(* The persistent artifact store: entry round-trips, corruption
   classified as Bad (never a wrong payload), size-bounded eviction,
   the artifact serializers, and the end-to-end contract — a warm
   cache run is byte-identical to the cold one with the artifacts
   served from the store, and verify mode flags a poisoned entry as an
   incident instead of believing it. *)

open Uas_ir
module B = Builder
module D = Uas_dfg
module Sd = D.Sched
module Store = Uas_runtime.Store
module Instrument = Uas_runtime.Instrument
module E = Uas_core.Experiments
module N = Uas_core.Nimble
module R = Uas_bench_suite.Registry

(* --- fixtures --- *)

let dir_counter = ref 0

(* a fresh store rooted in the system temp dir; open_dir creates it *)
let open_fresh ?max_bytes () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "uas-store-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  match Store.open_dir ?max_bytes dir with
  | Ok s -> s
  | Error m -> Alcotest.failf "open_dir %s: %s" dir m

let object_files s =
  let rec walk dir acc =
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk path acc else path :: acc)
      acc (Sys.readdir dir)
  in
  walk (Filename.concat (Store.dir s) "objects") []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let counter name =
  match List.assoc_opt name (Instrument.counters ()) with
  | Some n -> n
  | None -> 0

(* --- the store proper --- *)

let test_write_read_roundtrip () =
  let s = open_fresh () in
  let key = Store.key [ "kind=demo"; "some provenance"; "program text" ] in
  (* payloads are raw bytes: newlines and NULs must survive *)
  let payload = "line one\nline two\x00binary tail\n" in
  (match Store.write s ~kind:"demo" ~key payload with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write: %s" m);
  (match Store.read s ~kind:"demo" ~key with
  | Store.Hit p -> Alcotest.(check string) "payload survives" payload p
  | Store.Miss -> Alcotest.fail "expected a hit, got a miss"
  | Store.Bad m -> Alcotest.failf "expected a hit, got bad: %s" m);
  let st = Store.stats s in
  Alcotest.(check int) "one write" 1 st.Store.st_writes;
  Alcotest.(check int) "one hit" 1 st.Store.st_hits;
  Alcotest.(check (float 1e-9)) "hit rate 1" 1.0 (Store.hit_rate st)

let test_unknown_key_is_miss () =
  let s = open_fresh () in
  (match Store.read s ~kind:"demo" ~key:(Store.key [ "never written" ]) with
  | Store.Miss -> ()
  | Store.Hit _ | Store.Bad _ -> Alcotest.fail "expected a miss");
  Alcotest.(check int) "one miss" 1 (Store.stats s).Store.st_misses

let test_key_separates_parts () =
  (* the NUL joiner keeps part boundaries out of collision range *)
  Alcotest.(check bool)
    "[ab] <> [a;b]" false
    (String.equal (Store.key [ "ab" ]) (Store.key [ "a"; "b" ]));
  Alcotest.(check string)
    "deterministic"
    (Store.key [ "a"; "b" ])
    (Store.key [ "a"; "b" ])

let test_flipped_bit_is_bad () =
  let s = open_fresh () in
  let key = Store.key [ "corruptible" ] in
  (match Store.write s ~kind:"demo" ~key "precious artifact bytes" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write: %s" m);
  (match object_files s with
  | [ path ] ->
    let contents = read_file path in
    let b = Bytes.of_string contents in
    let i = Bytes.length b - 3 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    write_file path (Bytes.to_string b)
  | files -> Alcotest.failf "expected 1 object file, got %d" (List.length files));
  (match Store.read s ~kind:"demo" ~key with
  | Store.Bad m ->
    Alcotest.(check bool) "names the checksum" true
      (Helpers.contains ~sub:"checksum" m)
  | Store.Hit _ -> Alcotest.fail "corrupted entry served as a hit"
  | Store.Miss -> Alcotest.fail "corrupted entry classified as a miss");
  Alcotest.(check int) "one bad" 1 (Store.stats s).Store.st_bad

let test_truncated_entry_is_bad () =
  let s = open_fresh () in
  let key = Store.key [ "torn" ] in
  (match Store.write s ~kind:"demo" ~key "a payload that will be cut" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write: %s" m);
  (match object_files s with
  | [ path ] ->
    let contents = read_file path in
    write_file path (String.sub contents 0 (String.length contents - 5))
  | files -> Alcotest.failf "expected 1 object file, got %d" (List.length files));
  match Store.read s ~kind:"demo" ~key with
  | Store.Bad _ -> ()
  | Store.Hit _ -> Alcotest.fail "torn entry served as a hit"
  | Store.Miss -> Alcotest.fail "torn entry classified as a miss"

let test_entry_under_wrong_key_is_bad () =
  (* a file that lands under the wrong name (hardware bit rot in a
     directory block, a mangled restore) carries its own key and is
     rejected *)
  let s = open_fresh () in
  let key_a = Store.key [ "entry a" ] in
  let key_b = Store.key [ "entry b" ] in
  (match Store.write s ~kind:"demo" ~key:key_a "payload a" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write: %s" m);
  (match object_files s with
  | [ path_a ] ->
    let prefix = String.sub key_b 0 2 in
    let dir_b =
      Filename.concat
        (Filename.concat (Filename.concat (Store.dir s) "objects") "demo")
        prefix
    in
    (try Unix.mkdir dir_b 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    write_file (Filename.concat dir_b key_b) (read_file path_a)
  | files -> Alcotest.failf "expected 1 object file, got %d" (List.length files));
  match Store.read s ~kind:"demo" ~key:key_b with
  | Store.Bad m ->
    Alcotest.(check bool) "names the key mismatch" true
      (Helpers.contains ~sub:"key mismatch" m)
  | Store.Hit _ -> Alcotest.fail "misplaced entry served as a hit"
  | Store.Miss -> Alcotest.fail "misplaced entry classified as a miss"

let test_eviction_bounds_size () =
  let max_bytes = 4096 in
  let s = open_fresh ~max_bytes () in
  let payload = String.make 200 'x' in
  for i = 1 to 40 do
    match
      Store.write s ~kind:"demo"
        ~key:(Store.key [ string_of_int i ])
        payload
    with
    | Ok () -> ()
    | Error m -> Alcotest.failf "write %d: %s" i m
  done;
  let st = Store.stats s in
  Alcotest.(check bool)
    "sweep ran" true (st.Store.st_evicted > 0);
  let on_disk =
    List.fold_left
      (fun acc path -> acc + (Unix.stat path).Unix.st_size)
      0 (object_files s)
  in
  Alcotest.(check bool)
    (Printf.sprintf "on-disk size %d bounded by the budget %d" on_disk
       max_bytes)
    true (on_disk <= max_bytes)

(* --- artifact serializers --- *)

let fg_body =
  [ B.("b" <-- band (v "a" + int 3) (int 255));
    B.("a" <-- bxor (v "b" + v "b") (int 21)) ]

let mem_body =
  [ B.("t" <-- load "src" (v "j"));
    B.("acc" <-- v "acc" + load "tab" (band (v "t") (int 255)));
    B.store "dst" (B.v "j") (B.v "acc") ]

let graph_of body = fst (D.Build.build ~inner_index:"j" body)

let test_schedule_serialization_roundtrip () =
  List.iter
    (fun (name, body) ->
      let g = graph_of body in
      let s = Sd.modulo_schedule g in
      match Sd.schedule_of_string (Sd.schedule_to_string s) with
      | Some s' ->
        if s' <> s then Alcotest.failf "%s: schedule round-trip differs" name
      | None -> Alcotest.failf "%s: schedule failed to parse back" name)
    [ ("fg", fg_body); ("mem", mem_body) ];
  Alcotest.(check (option reject)) "junk rejected" None
    (Option.map ignore (Sd.schedule_of_string "sched 1 nonsense"))

let test_exact_serialization_roundtrip () =
  List.iter
    (fun (name, body) ->
      let g = graph_of body in
      let witness = Sd.modulo_schedule g in
      let e = Sd.optimal_schedule ~witness g in
      match Sd.exact_of_string (Sd.exact_to_string e) with
      | Some e' ->
        if e' <> e then Alcotest.failf "%s: exact round-trip differs" name
      | None -> Alcotest.failf "%s: exact failed to parse back" name)
    [ ("fg", fg_body); ("mem", mem_body) ];
  Alcotest.(check (option reject)) "junk rejected" None
    (Option.map ignore (Sd.exact_of_string "exact 2 what"))

let iir () =
  match R.find "iir" with
  | Some b -> b
  | None -> Alcotest.fail "IIR benchmark missing"

let test_report_serialization_roundtrip () =
  let b = iir () in
  List.iter
    (fun version ->
      let built =
        match
          N.build_version_result b.R.b_program ~outer_index:b.R.b_outer_index
            ~inner_index:b.R.b_inner_index version
        with
        | Ok built -> built
        | Error d -> Alcotest.failf "build: %s" (Uas_pass.Diag.to_string d)
      in
      let r = N.estimate built in
      match Uas_hw.Estimate.report_of_string (Uas_hw.Estimate.report_to_string r) with
      | Some r' ->
        if r' <> r then Alcotest.fail "report round-trip differs"
      | None -> Alcotest.fail "report failed to parse back")
    [ N.Original; N.Pipelined; N.Squashed 2 ]

(* names pass through verbatim, even with spaces and '=' in them *)
let test_report_name_verbatim () =
  let b = iir () in
  let built =
    match
      N.build_version_result b.R.b_program ~outer_index:b.R.b_outer_index
        ~inner_index:b.R.b_inner_index N.Original
    with
    | Ok built -> built
    | Error d -> Alcotest.failf "build: %s" (Uas_pass.Diag.to_string d)
  in
  let r = N.estimate built in
  let r = { r with Uas_hw.Estimate.r_name = "odd name= with spaces" } in
  match Uas_hw.Estimate.report_of_string (Uas_hw.Estimate.report_to_string r) with
  | Some r' ->
    Alcotest.(check string) "name survives" r.Uas_hw.Estimate.r_name
      r'.Uas_hw.Estimate.r_name
  | None -> Alcotest.fail "report failed to parse back"

(* --- end to end: cold vs warm --- *)

let render row = Fmt.str "%a%a" E.pp_table_6_2 [ row ] E.pp_table_6_3 [ row ]

let versions = [ N.Original; N.Pipelined; N.Squashed 2; N.Jammed 2 ]

let with_store ?max_bytes f =
  let s = open_fresh ?max_bytes () in
  Store.install s;
  Instrument.set_enabled true;
  Instrument.reset ();
  Fun.protect
    ~finally:(fun () ->
      Store.uninstall ();
      Store.set_verify false;
      Instrument.reset ();
      Instrument.set_enabled false)
    (fun () -> f s)

let test_warm_run_identical_and_served () =
  with_store (fun s ->
      let cold = render (E.run_benchmark ~versions ~jobs:1 (iir ())) in
      Alcotest.(check bool) "cold run populated the store" true
        ((Store.stats s).Store.st_writes > 0);
      Instrument.reset ();
      let warm = render (E.run_benchmark ~versions ~jobs:1 (iir ())) in
      Alcotest.(check string) "warm byte-identical to cold" cold warm;
      let hits = counter "cu.store-hit" and misses = counter "cu.store-miss" in
      Alcotest.(check bool)
        (Printf.sprintf "warm artifacts served from the store (%d/%d)" hits
           (hits + misses))
        true
        (hits > 0 && misses = 0))

(* Exact_report exercises all three artifact kinds the stages cache:
   schedule, exact certificate, and hardware estimate. *)
let test_warm_exact_report_identical () =
  with_store (fun _s ->
      let run () =
        render
          (E.run_benchmark ~versions ~exact:Sd.Exact_report ~jobs:1 (iir ()))
      in
      let cold = run () in
      Instrument.reset ();
      let warm = run () in
      Alcotest.(check string) "warm byte-identical to cold" cold warm;
      Alcotest.(check bool) "no warm misses" true
        (counter "cu.store-hit" > 0 && counter "cu.store-miss" = 0))

let test_verify_mode_clean () =
  with_store (fun _s ->
      let cold = render (E.run_benchmark ~versions ~jobs:1 (iir ())) in
      Store.set_verify true;
      let again = render (E.run_benchmark ~versions ~jobs:1 (iir ())) in
      Alcotest.(check string) "verify run byte-identical" cold again;
      Alcotest.(check bool) "recomputations matched the cache" true
        (counter "cu.store-verify-ok" > 0);
      Alcotest.(check int) "no mismatches" 0 (counter "cu.store-verify-mismatch"))

(* Poison a cached report (valid header, wrong content: the lie a
   checksum cannot catch) — verify mode recomputes, flags the
   mismatch as an incident, and replaces the entry. *)
let test_verify_mode_catches_poisoned_entry () =
  with_store (fun s ->
      let cold = render (E.run_benchmark ~versions ~jobs:1 (iir ())) in
      let reports_dir =
        Filename.concat (Filename.concat (Store.dir s) "objects") "report"
      in
      let poisoned = ref 0 in
      List.iter
        (fun path ->
          if Helpers.contains ~sub:reports_dir path then begin
            let contents = read_file path in
            (* rewrite the payload under a truthful header *)
            match String.index_opt contents '\n' with
            | None -> ()
            | Some _ ->
              let sep = "\n--\n" in
              let rec find i =
                if i + 4 > String.length contents then None
                else if String.equal (String.sub contents i 4) sep then Some i
                else find (i + 1)
              in
              (match find 0 with
              | None -> ()
              | Some i ->
                let header = String.sub contents 0 i in
                let payload =
                  String.sub contents (i + 4)
                    (String.length contents - i - 4)
                in
                let payload' = payload ^ "-poisoned" in
                let header' =
                  header
                  |> String.split_on_char '\n'
                  |> List.map (fun line ->
                         if String.length line > 4
                            && String.equal (String.sub line 0 4) "md5 "
                         then
                           "md5 " ^ Digest.to_hex (Digest.string payload')
                         else if
                           String.length line > 4
                           && String.equal (String.sub line 0 4) "len "
                         then "len " ^ string_of_int (String.length payload')
                         else line)
                  |> String.concat "\n"
                in
                write_file path (header' ^ sep ^ payload');
                incr poisoned)
          end)
        (object_files s);
      Alcotest.(check bool) "some reports poisoned" true (!poisoned > 0);
      Store.set_verify true;
      let row = E.run_benchmark ~versions ~jobs:1 (iir ()) in
      Store.set_verify false;
      Alcotest.(check string)
        "cells still computed fresh (byte-identical body)" cold
        (render
           { row with
             E.br_cells =
               List.map
                 (fun c -> { c with E.c_incidents = [] })
                 row.E.br_cells });
      Alcotest.(check bool) "mismatch counted" true
        (counter "cu.store-verify-mismatch" > 0);
      Alcotest.(check bool) "mismatch is an incident" true
        (List.exists
           (fun (c : E.cell) ->
             List.exists
               (fun d ->
                 Helpers.contains ~sub:"differs from recomputation"
                   (Uas_pass.Diag.to_string d))
               c.E.c_incidents)
           row.E.br_cells))

(* --- multi-process locking --- *)

(* Spawn a child process that takes the store's advisory file lock
   (fcntl locks are per-process, so same-process contention cannot
   exercise this path, and [Unix.fork] is unavailable once other
   suites have spawned domains).  The child signals readiness on its
   stdout and holds the lock until its stdin reaches EOF. *)
let spawn_lock_holder lock_path =
  let helper =
    Filename.concat (Filename.dirname Sys.executable_name) "lock_holder.exe"
  in
  (* cloexec: the child must not inherit the parent ends, or closing
     [in_w] here would never deliver its stdin EOF ([create_process]
     dup2s the two ends it is given, which clears cloexec) *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process helper [| helper; lock_path |] in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  ignore (Unix.read out_r (Bytes.create 1) 0 1);
  Unix.close out_r;
  let release () =
    (try Unix.close in_w with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid)
  in
  release

let test_evict_skips_under_foreign_lock () =
  let s = open_fresh ~max_bytes:4096 () in
  Instrument.set_enabled true;
  Instrument.reset ();
  Fun.protect ~finally:(fun () ->
      Instrument.reset ();
      Instrument.set_enabled false)
  @@ fun () ->
  let payload = String.make 200 'x' in
  for i = 1 to 40 do
    match
      Store.write s ~kind:"demo" ~key:(Store.key [ string_of_int i ]) payload
    with
    | Ok () -> ()
    | Error m -> Alcotest.failf "write %d: %s" i m
  done;
  let before = (Store.stats s).Store.st_evict_skipped in
  let release = spawn_lock_holder (Store.lock_file s) in
  Fun.protect ~finally:release (fun () ->
      Store.evict_now s;
      let st = Store.stats s in
      Alcotest.(check int) "sweep skipped, not an error" (before + 1)
        st.Store.st_evict_skipped;
      Alcotest.(check bool) "skip is an incident counter" true
        (counter "store.evict-skipped" > 0);
      let rendered = Format.asprintf "%a" Store.pp_stats s in
      Alcotest.(check bool) "pp_stats reports the skip" true
        (Helpers.contains ~sub:"skipped" rendered));
  (* lock released: the next sweep proceeds without another skip *)
  Store.evict_now s;
  Alcotest.(check int) "freed lock sweeps again" (before + 1)
    (Store.stats s).Store.st_evict_skipped

let test_write_waits_for_foreign_lock () =
  let s = open_fresh () in
  let release = spawn_lock_holder (Store.lock_file s) in
  let releaser = Thread.create (fun () -> Thread.delay 0.4; release ()) () in
  let t0 = Unix.gettimeofday () in
  (match Store.write s ~kind:"demo" ~key:(Store.key [ "held" ]) "payload" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "write under a foreign lock errored: %s" m);
  let dt = Unix.gettimeofday () -. t0 in
  Thread.join releaser;
  Alcotest.(check bool)
    (Printf.sprintf "publish waited for the lock (%.3fs)" dt)
    true (dt >= 0.3);
  match Store.read s ~kind:"demo" ~key:(Store.key [ "held" ]) with
  | Store.Hit p -> Alcotest.(check string) "entry intact" "payload" p
  | Store.Miss | Store.Bad _ -> Alcotest.fail "entry lost under contention"

let test_scan_reports_contents () =
  let s = open_fresh () in
  Alcotest.(check (pair int int)) "fresh store is empty" (0, 0) (Store.scan s);
  List.iter
    (fun k ->
      match Store.write s ~kind:"demo" ~key:(Store.key [ k ]) ("v-" ^ k) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "write %s: %s" k m)
    [ "a"; "b"; "c" ];
  let count, bytes = Store.scan s in
  Alcotest.(check int) "one object per write" 3 count;
  Alcotest.(check bool) "bytes accounted" true (bytes > 0)

let suite =
  [ Alcotest.test_case "write/read round-trip" `Quick
      test_write_read_roundtrip;
    Alcotest.test_case "unknown key is a miss" `Quick
      test_unknown_key_is_miss;
    Alcotest.test_case "key hashes part boundaries" `Quick
      test_key_separates_parts;
    Alcotest.test_case "flipped bit classifies as Bad" `Quick
      test_flipped_bit_is_bad;
    Alcotest.test_case "truncated entry classifies as Bad" `Quick
      test_truncated_entry_is_bad;
    Alcotest.test_case "entry under the wrong key is Bad" `Quick
      test_entry_under_wrong_key_is_bad;
    Alcotest.test_case "eviction bounds the store size" `Quick
      test_eviction_bounds_size;
    Alcotest.test_case "schedule serialization round-trip" `Quick
      test_schedule_serialization_roundtrip;
    Alcotest.test_case "exact certificate round-trip" `Quick
      test_exact_serialization_roundtrip;
    Alcotest.test_case "estimate report round-trip" `Quick
      test_report_serialization_roundtrip;
    Alcotest.test_case "report names pass verbatim" `Quick
      test_report_name_verbatim;
    Alcotest.test_case "warm run byte-identical, served from store" `Quick
      test_warm_run_identical_and_served;
    Alcotest.test_case "warm exact-report run byte-identical" `Quick
      test_warm_exact_report_identical;
    Alcotest.test_case "verify mode: clean cache, no incidents" `Quick
      test_verify_mode_clean;
    Alcotest.test_case "verify mode: poisoned entry flagged" `Quick
      test_verify_mode_catches_poisoned_entry;
    Alcotest.test_case "eviction skips under a foreign lock" `Quick
      test_evict_skips_under_foreign_lock;
    Alcotest.test_case "publish waits for a foreign lock" `Quick
      test_write_waits_for_foreign_lock;
    Alcotest.test_case "scan reports the store contents" `Quick
      test_scan_reports_contents ]
