(* The hardware estimator and the Nimble driver: monotonicity and
   conservation properties the paper's analysis (§4.4) predicts, plus
   Table 6.2/6.3 sanity. *)

module S = Uas_bench_suite
module N = Uas_core.Nimble
module E = Uas_core.Experiments
module Hw = Uas_hw
module Estimate = Uas_hw.Estimate

(* a small fixed benchmark set reused across cases *)
let small_suite () =
  [ S.Registry.skipjack_mem ~m:16 ();
    S.Registry.skipjack_hw ~m:16 ();
    S.Registry.des_mem ~m:16 ();
    S.Registry.des_hw ~m:16 ();
    S.Registry.iir ~channels:16 () ]

(* the sweep is expensive (10 transforms + schedules per benchmark):
   compute it lazily once per benchmark name *)
let sweep_cache : (string, (N.version * N.built * Estimate.report) list) Hashtbl.t =
  Hashtbl.create 8

let sweep b =
  match Hashtbl.find_opt sweep_cache b.S.Registry.b_name with
  | Some rows -> rows
  | None ->
    let rows =
      N.sweep b.S.Registry.b_program ~outer_index:b.S.Registry.b_outer_index
        ~inner_index:b.S.Registry.b_inner_index
      |> N.successes
    in
    Hashtbl.replace sweep_cache b.S.Registry.b_name rows;
    rows

let small_suite =
  let cached = lazy (small_suite ()) in
  fun () -> Lazy.force cached

let report_of rows version =
  match List.find_opt (fun (v, _, _) -> v = version) rows with
  | Some (_, _, r) -> r
  | None -> Alcotest.failf "missing version %s" (N.version_name version)

let test_pipelined_not_slower_than_original () =
  List.iter
    (fun b ->
      let rows = sweep b in
      let orig = report_of rows N.Original in
      let pipe = report_of rows N.Pipelined in
      Alcotest.(check bool)
        (b.S.Registry.b_name ^ " pipelined II <= original II")
        true
        (pipe.Estimate.r_ii <= orig.Estimate.r_ii))
    (small_suite ())

let test_squash_keeps_operators () =
  (* §4.4: unroll-and-squash adds only registers *)
  List.iter
    (fun b ->
      let rows = sweep b in
      let orig = report_of rows N.Original in
      List.iter
        (fun ds ->
          let r = report_of rows (N.Squashed ds) in
          (* §4.4: only registers are added — plus at most the single
             adder that advances the data set's private inner counter *)
          Alcotest.(check bool)
            (Printf.sprintf "%s squash(%d) operators" b.S.Registry.b_name ds)
            true
            (r.Estimate.r_operators >= orig.Estimate.r_operators
            && r.Estimate.r_operators <= orig.Estimate.r_operators + 1);
          Alcotest.(check int)
            (Printf.sprintf "%s squash(%d) memory refs" b.S.Registry.b_name ds)
            orig.Estimate.r_mem_refs r.Estimate.r_mem_refs)
        [ 2; 4; 8; 16 ])
    (small_suite ())

let test_jam_scales_operators () =
  List.iter
    (fun b ->
      let rows = sweep b in
      let orig = report_of rows N.Original in
      List.iter
        (fun ds ->
          let r = report_of rows (N.Jammed ds) in
          Alcotest.(check int)
            (Printf.sprintf "%s jam(%d) operators" b.S.Registry.b_name ds)
            (ds * orig.Estimate.r_operators)
            r.Estimate.r_operators;
          Alcotest.(check int)
            (Printf.sprintf "%s jam(%d) memory refs" b.S.Registry.b_name ds)
            (ds * orig.Estimate.r_mem_refs)
            r.Estimate.r_mem_refs)
        [ 2; 4; 8 ])
    (small_suite ())

let test_squash_ii_monotone () =
  (* more data sets never increase the initiation interval *)
  List.iter
    (fun b ->
      let rows = sweep b in
      let iis =
        List.map
          (fun ds -> (report_of rows (N.Squashed ds)).Estimate.r_ii)
          [ 2; 4; 8; 16 ]
      in
      let rec mono = function
        | a :: (b :: _ as rest) -> a >= b && mono rest
        | _ -> true
      in
      Alcotest.(check bool)
        (b.S.Registry.b_name ^ " squash II monotone non-increasing")
        true (mono iis))
    (small_suite ())

let test_squash_ii_floor_is_memory_bound () =
  (* §6.3: the initial memory reference count bounds the squashed II
     from below *)
  List.iter
    (fun b ->
      let rows = sweep b in
      let orig = report_of rows N.Original in
      let floor = (orig.Estimate.r_mem_refs + 1) / 2 in
      List.iter
        (fun ds ->
          let r = report_of rows (N.Squashed ds) in
          Alcotest.(check bool)
            (Printf.sprintf "%s squash(%d) II >= mem floor"
               b.S.Registry.b_name ds)
            true
            (r.Estimate.r_ii >= max 1 floor))
        [ 2; 4; 8; 16 ])
    (small_suite ())

let test_total_work_conserved () =
  (* §4.4: the total iteration count of the squashed nest stays ~M*N:
     M/DS * (DS*N - DS + 1) <= M*N, within one outer sweep *)
  let b = S.Registry.skipjack_hw ~m:16 () in
  let rows = sweep b in
  let orig = report_of rows N.Original in
  List.iter
    (fun ds ->
      let r = report_of rows (N.Squashed ds) in
      Alcotest.(check bool) "work within bounds" true
        (r.Estimate.r_kernel_iterations <= orig.Estimate.r_kernel_iterations
        && r.Estimate.r_kernel_iterations
           > orig.Estimate.r_kernel_iterations * (ds - 1) / ds))
    [ 2; 4; 8 ]

let test_area_decomposition () =
  List.iter
    (fun b ->
      List.iter
        (fun (_, _, (r : Estimate.report)) ->
          Alcotest.(check int)
            (r.Estimate.r_name ^ " area = operators + registers")
            (r.Estimate.r_operator_rows + r.Estimate.r_registers)
            r.Estimate.r_area_rows)
        (sweep b))
    (small_suite ())

let test_register_packing_target () =
  (* the packed-register target shrinks area but touches nothing else *)
  let b = S.Registry.skipjack_hw ~m:16 () in
  let built =
    N.build_version b.S.Registry.b_program ~outer_index:"i" ~inner_index:"j"
      (N.Squashed 8)
  in
  let dflt = N.estimate built in
  let packed = N.estimate ~target:Hw.Datapath.packed_registers built in
  Alcotest.(check int) "same II" dflt.Estimate.r_ii packed.Estimate.r_ii;
  Alcotest.(check bool) "smaller area" true
    (packed.Estimate.r_area_rows < dflt.Estimate.r_area_rows)

let test_width_sized_target () =
  (* §5.4 back-end sizing: smaller operator rows for the byte-oriented
     Skipjack kernel, same II and registers *)
  let b = S.Registry.skipjack_hw ~m:16 () in
  let built =
    N.build_version b.S.Registry.b_program ~outer_index:"i" ~inner_index:"j"
      N.Pipelined
  in
  let dflt = N.estimate built in
  let sized = N.estimate ~target:Hw.Datapath.width_sized built in
  Alcotest.(check int) "same II" dflt.Estimate.r_ii sized.Estimate.r_ii;
  Alcotest.(check int) "same registers" dflt.Estimate.r_registers
    sized.Estimate.r_registers;
  Alcotest.(check bool) "smaller operator rows" true
    (sized.Estimate.r_operator_rows < dflt.Estimate.r_operator_rows)

let test_port_count_ablation () =
  (* fewer memory ports raise (or keep) the II of memory-bound kernels *)
  let b = S.Registry.des_mem ~m:16 () in
  let built =
    N.build_version b.S.Registry.b_program ~outer_index:"i" ~inner_index:"j"
      (N.Squashed 8)
  in
  let one = N.estimate ~target:Hw.Datapath.single_port built in
  let two = N.estimate built in
  let four = N.estimate ~target:Hw.Datapath.quad_port built in
  Alcotest.(check bool) "1 port slowest" true
    (one.Estimate.r_ii >= two.Estimate.r_ii);
  Alcotest.(check bool) "4 ports fastest" true
    (four.Estimate.r_ii <= two.Estimate.r_ii)

let test_select_best_prefers_efficiency () =
  let b = S.Registry.skipjack_hw ~m:16 () in
  let rows = sweep b in
  match N.select_best rows with
  | None -> Alcotest.fail "no selection"
  | Some (v, _, _) ->
    Alcotest.(check bool)
      ("selected " ^ N.version_name v ^ " is a squash version")
      true
      (match v with N.Squashed _ -> true | _ -> false)

let test_normalized_baseline_is_one () =
  let row =
    E.run_benchmark ~verify:false (S.Registry.skipjack_hw ~m:16 ())
  in
  let n =
    List.find (fun n -> n.E.n_version = N.Original) (E.normalize row)
  in
  Alcotest.(check (float 1e-9)) "speedup 1" 1.0 n.E.n_speedup;
  Alcotest.(check (float 1e-9)) "area 1" 1.0 n.E.n_area;
  Alcotest.(check (float 1e-9)) "efficiency 1" 1.0 n.E.n_efficiency

let test_operator_share_drops_with_squash () =
  (* Figure 6.4: operators as % of area fall sharply for squash *)
  let row =
    E.run_benchmark ~verify:false (S.Registry.des_hw ~m:16 ())
  in
  let norm = E.normalize row in
  let share v =
    (List.find (fun n -> n.E.n_version = v) norm).E.n_operator_share
  in
  Alcotest.(check bool) "squash(16) < original" true
    (share (N.Squashed 16) < share N.Original);
  Alcotest.(check bool) "squash(16) < squash(2)" true
    (share (N.Squashed 16) < share (N.Squashed 2))

let test_figure_2_4_full_utilization () =
  let timelines = E.figure_2_4 ~cycles:8 in
  let squash = List.assoc "unroll-and-squash(2)" timelines in
  let busy =
    List.filter (fun c -> c.E.u_data_set <> None) squash |> List.length
  in
  (* only g's first slot idles while the pipe fills *)
  Alcotest.(check int) "squash busy slots" (List.length squash - 1) busy;
  let jam = List.assoc "unroll-and-jam(2)" timelines in
  let jam_busy =
    List.filter (fun c -> c.E.u_data_set <> None) jam |> List.length
  in
  (* jam leaves half the slots idle *)
  Alcotest.(check int) "jam busy slots" (List.length jam / 2) jam_busy

let suite =
  [ Alcotest.test_case "pipelined <= original" `Slow
      test_pipelined_not_slower_than_original;
    Alcotest.test_case "squash keeps operators" `Slow
      test_squash_keeps_operators;
    Alcotest.test_case "jam scales operators" `Slow test_jam_scales_operators;
    Alcotest.test_case "squash II monotone" `Slow test_squash_ii_monotone;
    Alcotest.test_case "squash II memory floor" `Slow
      test_squash_ii_floor_is_memory_bound;
    Alcotest.test_case "total work conserved" `Slow test_total_work_conserved;
    Alcotest.test_case "area decomposition" `Slow test_area_decomposition;
    Alcotest.test_case "register packing target" `Quick
      test_register_packing_target;
    Alcotest.test_case "width-sized target" `Quick test_width_sized_target;
    Alcotest.test_case "memory port ablation" `Quick test_port_count_ablation;
    Alcotest.test_case "kernel selection" `Quick
      test_select_best_prefers_efficiency;
    Alcotest.test_case "normalized baseline" `Quick
      test_normalized_baseline_is_one;
    Alcotest.test_case "operator share drops" `Quick
      test_operator_share_drops_with_squash;
    Alcotest.test_case "figure 2.4 utilization" `Quick
      test_figure_2_4_full_utilization ]
