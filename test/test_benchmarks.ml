(* The Table 6.1 benchmark suite: known-answer tests for the host
   implementations, IR-vs-host equivalence, and — the heart of the
   reproduction — every transformed version of every benchmark must
   reproduce the reference outputs bit-for-bit. *)

open Uas_ir
module S = Uas_bench_suite
module N = Uas_core.Nimble

(* --- host known-answer tests --- *)

let test_skipjack_kat () =
  let got =
    S.Skipjack.encrypt_block ~key:S.Skipjack.kat_key
      ( S.Skipjack.kat_plaintext_words.(0),
        S.Skipjack.kat_plaintext_words.(1),
        S.Skipjack.kat_plaintext_words.(2),
        S.Skipjack.kat_plaintext_words.(3) )
  in
  let w1, w2, w3, w4 = got in
  Alcotest.(check (list int))
    "official Skipjack test vector"
    (Array.to_list S.Skipjack.kat_ciphertext_words)
    [ w1; w2; w3; w4 ]

let test_des_kat () =
  let got = S.Des.encrypt_block ~key64:S.Des.kat_key S.Des.kat_plaintext in
  Alcotest.(check int64) "textbook DES test vector" S.Des.kat_ciphertext got

let test_des_spbox_matches_sbox () =
  (* the combined SP-boxes must agree with direct S-box + P lookup *)
  for b = 0 to 7 do
    for v = 0 to 63 do
      let direct =
        S.Des.permute ~in_width:32 S.Des.p_table
          (S.Des.sbox_lookup b v lsl (28 - (4 * b)))
      in
      if S.Des.spbox.(b).(v) <> direct then
        Alcotest.failf "spbox(%d)(%d) mismatch" b v
    done
  done

let test_skipjack_f_table_is_permutation () =
  let seen = Array.make 256 false in
  Array.iter (fun x -> seen.(x) <- true) S.Skipjack.f_table;
  Alcotest.(check bool) "F is a 256-permutation" true
    (Array.for_all (fun b -> b) seen)

(* --- IR vs host --- *)

let test_reference_outputs () =
  List.iter
    (fun (b : S.Registry.benchmark) ->
      match S.Registry.check_against_reference b b.S.Registry.b_program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" b.S.Registry.b_name m)
    (S.Registry.all () @ S.Registry.extras ())

let test_benchmarks_validate () =
  List.iter
    (fun (b : S.Registry.benchmark) ->
      match Validate.errors b.S.Registry.b_program with
      | [] -> ()
      | errs ->
        Alcotest.failf "%s: %a" b.S.Registry.b_name
          (Fmt.list Validate.pp_error) errs)
    (S.Registry.all () @ S.Registry.extras ())

(* --- every paper version of every benchmark stays correct --- *)

let test_all_versions_verified () =
  (* smaller instances keep the interpreter fast; factors up to 16 need
     m >= 16 *)
  let benches =
    [ S.Registry.skipjack_mem ~m:16 ();
      S.Registry.skipjack_hw ~m:16 ();
      S.Registry.des_mem ~m:16 ();
      S.Registry.des_hw ~m:16 ();
      S.Registry.iir ~channels:16 () ]
  in
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let rows =
        N.sweep b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index
        |> N.successes
      in
      Alcotest.(check int)
        (b.S.Registry.b_name ^ " all versions built")
        (List.length N.paper_versions)
        (List.length rows);
      List.iter
        (fun (version, built, _report) ->
          (match
             S.Registry.check_against_reference b built.N.bv_program
           with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "%s %s: %s" b.S.Registry.b_name
              (N.version_name version) m);
          (* and the kernel schedule behind the reported II passes the
             shared validity checker *)
          let detail =
            Uas_hw.Estimate.kernel_detail built.N.bv_program
              ~index:built.N.bv_kernel_index
          in
          let s =
            Uas_hw.Estimate.kernel_schedule
              ~pipelined:(N.pipelined version) detail
          in
          match
            Uas_dfg.Sched.check_schedule detail.Uas_dfg.Build.d_graph s
          with
          | Ok () -> ()
          | Error msgs ->
            Alcotest.failf "%s %s: invalid schedule: %s"
              b.S.Registry.b_name (N.version_name version)
              (String.concat "; " msgs))
        rows)
    benches

let test_versions_with_peeling () =
  (* block counts that are not multiples of the factors *)
  let b = S.Registry.skipjack_mem ~m:19 () in
  let rows =
    N.sweep b.S.Registry.b_program ~outer_index:"i" ~inner_index:"j"
      ~versions:[ N.Squashed 4; N.Jammed 4; N.Squashed 16 ]
    |> N.successes
  in
  Alcotest.(check int) "all built" 3 (List.length rows);
  List.iter
    (fun (version, built, _) ->
      match S.Registry.check_against_reference b built.N.bv_program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" (N.version_name version) m)
    rows

(* --- the 3-deep extra: every deep-nest version stays correct --- *)

let test_wavelet3_versions_verified () =
  let b = S.Registry.wavelet3 () in
  let rows =
    N.sweep b.S.Registry.b_program
      ~versions:(N.versions_for ~depth:3)
      ~outer_index:b.S.Registry.b_outer_index
      ~inner_index:b.S.Registry.b_inner_index
    |> N.successes
  in
  Alcotest.(check int)
    "all deep-nest versions built"
    (List.length (N.versions_for ~depth:3))
    (List.length rows);
  List.iter
    (fun (version, built, _report) ->
      (match S.Registry.check_against_reference b built.N.bv_program with
      | Ok () -> ()
      | Error m -> Alcotest.failf "wavelet3 %s: %s" (N.version_name version) m);
      let detail =
        Uas_hw.Estimate.kernel_detail built.N.bv_program
          ~index:built.N.bv_kernel_index
      in
      let s =
        Uas_hw.Estimate.kernel_schedule ~pipelined:(N.pipelined version) detail
      in
      match Uas_dfg.Sched.check_schedule detail.Uas_dfg.Build.d_graph s with
      | Ok () -> ()
      | Error msgs ->
        Alcotest.failf "wavelet3 %s: invalid schedule: %s"
          (N.version_name version)
          (String.concat "; " msgs))
    rows

(* the raw squash on the deep pair must be rejected with the inner-loop
   diagnostic, not mis-applied: the whole reason the flatten route
   exists *)
let test_wavelet3_raw_squash_rejected () =
  let b = S.Registry.wavelet3 () in
  match
    N.build_version_result b.S.Registry.b_program
      ~outer_index:b.S.Registry.b_outer_index
      ~inner_index:b.S.Registry.b_inner_index (N.Squashed 4)
  with
  | Ok _ -> Alcotest.fail "raw squash on the 3-deep nest must be rejected"
  | Error d ->
    Alcotest.(check string) "rejecting pass" "squash" d.Uas_pass.Diag.d_pass

(* --- profiling study --- *)

let test_profile_hot_loops_dominate () =
  let rows = S.Profile.table () in
  Alcotest.(check int) "six applications" 6 (List.length rows);
  List.iter
    (fun (r : S.Profile.row) ->
      Alcotest.(check bool)
        (r.S.Profile.row_app ^ " hot loops cover most time")
        true
        (r.S.Profile.hot_percent > 80.0);
      let paper_loops, _, _ = r.S.Profile.paper in
      Alcotest.(check int)
        (r.S.Profile.row_app ^ " static loop count")
        paper_loops r.S.Profile.loops)
    rows

let test_profile_few_loops_hot () =
  List.iter
    (fun (r : S.Profile.row) ->
      Alcotest.(check bool)
        (r.S.Profile.row_app ^ " only a few loops are hot")
        true
        (r.S.Profile.hot_loops <= 16))
    (S.Profile.table ())

let suite =
  [ Alcotest.test_case "skipjack KAT" `Quick test_skipjack_kat;
    Alcotest.test_case "DES KAT" `Quick test_des_kat;
    Alcotest.test_case "DES SP-boxes" `Quick test_des_spbox_matches_sbox;
    Alcotest.test_case "skipjack F permutation" `Quick
      test_skipjack_f_table_is_permutation;
    Alcotest.test_case "IR matches host references" `Quick
      test_reference_outputs;
    Alcotest.test_case "benchmarks validate" `Quick test_benchmarks_validate;
    Alcotest.test_case "all versions verified" `Slow
      test_all_versions_verified;
    Alcotest.test_case "versions with peeling" `Slow
      test_versions_with_peeling;
    Alcotest.test_case "wavelet3 deep-nest versions verified" `Slow
      test_wavelet3_versions_verified;
    Alcotest.test_case "wavelet3 raw squash rejected" `Quick
      test_wavelet3_raw_squash_rejected;
    Alcotest.test_case "profile hot loops dominate" `Quick
      test_profile_hot_loops_dominate;
    Alcotest.test_case "profile few loops hot" `Quick
      test_profile_few_loops_hot ]
