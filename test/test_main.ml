let () =
  Alcotest.run "unroll_and_squash"
    [ ("ir", Test_ir.suite);
      ("parser", Test_parser.suite);
      ("analysis", Test_analysis.suite);
      ("dfg", Test_dfg.suite);
      ("sched-exact", Test_sched_exact.suite);
      ("squash", Test_squash.suite);
      ("transforms", Test_transforms.suite);
      ("extra-transforms", Test_extra_transforms.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("decrypt", Test_decrypt.suite);
      ("hw", Test_hw.suite);
      ("pipeline-sim", Test_pipeline_sim.suite);
      ("pass", Test_pass.suite);
      ("rewrite", Test_rewrite.suite);
      ("core", Test_core.suite);
      ("runtime", Test_runtime.suite);
      ("store", Test_store.suite);
      ("fault", Test_fault.suite);
      ("differential", Test_differential.suite);
      ("fast-interp", Test_fast_interp.suite);
      ("native-interp", Test_native_interp.suite);
      ("bitwidth", Test_bitwidth.suite);
      ("c-export", Test_c_export.suite);
      ("goldens", Test_goldens.suite);
      ("misc", Test_misc.suite);
      ("service", Test_service.suite) ]
