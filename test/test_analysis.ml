(* The analysis substrate: def/use and liveness, loop-nest discovery,
   induction variables, dependence analysis, legality and SSA. *)

open Uas_ir
module A = Uas_analysis
module B = Builder
module Sset = Stmt.Sset

let set_testable =
  Alcotest.testable
    (fun ppf s -> Fmt.(list ~sep:(any ", ") string) ppf (Sset.elements s))
    Sset.equal

let sset l = Sset.of_list l

(* --- def/use --- *)

let fg_body =
  [ B.("b" <-- band (v "a" + int 3) (int 255));
    B.("a" <-- bxor (v "b" + v "b") (int 21)) ]

let test_upward_exposed () =
  Alcotest.check set_testable "fg body" (sset [ "a" ])
    (A.Def_use.upward_exposed fg_body);
  Alcotest.check set_testable "carried" (sset [ "a" ])
    (A.Def_use.loop_carried fg_body)

let test_for_summary_hides_index () =
  let s =
    B.for_ "j" ~hi:(B.int 4) [ B.("x" <-- v "j" + v "k") ]
  in
  let du = A.Def_use.of_stmt s in
  Alcotest.check set_testable "uses" (sset [ "k" ]) du.A.Def_use.du_uses;
  Alcotest.check set_testable "defs" (sset [ "j"; "x" ]) du.A.Def_use.du_defs

let test_liveness_block () =
  let live_out = sset [ "a" ] in
  let live_in = A.Def_use.live_in_of_block ~live_out fg_body in
  Alcotest.check set_testable "live in" (sset [ "a" ]) live_in;
  let ml = A.Def_use.max_live ~live_out fg_body in
  Alcotest.(check bool) "max live sane" true (ml >= 1 && ml <= 3)

(* --- loop nests --- *)

let test_find_nest () =
  let p = Helpers.fg_loop ~m:4 ~n:2 in
  let nests = A.Loop_nest.find p in
  Alcotest.(check int) "one nest" 1 (List.length nests);
  Alcotest.(check int) "depth 2" 2 (A.Loop_nest.depth (List.hd nests));
  let n = A.Loop_nest.pair_at (List.hd nests) 0 in
  Alcotest.(check string) "outer" "i" n.A.Loop_nest.outer_index;
  Alcotest.(check string) "inner" "j" n.A.Loop_nest.inner_index;
  Alcotest.(check int) "pre size" 1 (List.length n.A.Loop_nest.pre);
  Alcotest.(check int) "post size" 1 (List.length n.A.Loop_nest.post);
  Alcotest.(check (option int)) "outer trips" (Some 4)
    (A.Loop_nest.outer_trip_count n);
  Alcotest.(check (option int)) "inner trips" (Some 2)
    (A.Loop_nest.inner_trip_count n)

let test_nest_roundtrip () =
  let p = Helpers.ch4_loop ~m:4 ~n:3 in
  let n = A.Loop_nest.find_by_outer_index p "i" in
  let q =
    A.Loop_nest.replace p ~outer_index:"i" [ A.Loop_nest.pair_to_stmt n ]
  in
  Alcotest.(check bool) "roundtrip equal" true
    (Stmt.equal_list p.Stmt.body q.Stmt.body)

let test_triple_nest_found () =
  (* a 3-deep nest is one maximal nest headed at the outer level; the
     summary catalogs every addressable level with its suffix depth *)
  let p =
    B.program "deep"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("k", Types.Tint);
          ("x", Types.Tint) ]
      ~arrays:[ B.output "o" 4 ]
      [ B.for_ "i" ~hi:(B.int 2)
          [ B.for_ "j" ~hi:(B.int 2)
              [ B.for_ "k" ~hi:(B.int 2) [ B.("x" <-- v "x" + int 1) ] ];
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  let nests = A.Loop_nest.find p in
  Alcotest.(check int) "one nest found" 1 (List.length nests);
  let n = List.hd nests in
  Alcotest.(check int) "depth 3" 3 (A.Loop_nest.depth n);
  Alcotest.(check string) "headed at i" "i"
    (List.hd n.A.Loop_nest.levels).A.Loop_nest.l_index;
  Alcotest.(check (list (pair string int)))
    "summary catalogs i and j" [ ("i", 3); ("j", 2) ] (A.Loop_nest.summary p);
  (* the pair views: (i, j) wraps the k loop; (j, k) is loop-free *)
  let pij = A.Loop_nest.pair_at n 0 in
  Alcotest.(check string) "pair 0 inner" "j" pij.A.Loop_nest.inner_index;
  let has_loop =
    List.exists (function Stmt.For _ -> true | _ -> false)
  in
  Alcotest.(check bool) "pair 0 inner body holds the k loop" true
    (has_loop pij.A.Loop_nest.inner_body);
  let pjk = A.Loop_nest.pair_at n 1 in
  Alcotest.(check string) "pair 1 outer" "j" pjk.A.Loop_nest.outer_index;
  Alcotest.(check bool) "pair 1 inner body loop-free" false
    (has_loop pjk.A.Loop_nest.inner_body)

(* --- induction variables --- *)

let test_induction_found_and_rewritten () =
  let p =
    B.program "iv"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("ptr", Types.Tint);
          ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 64; B.output "o" 64 ]
      [ B.("ptr" <-- int 5);
        B.for_ "i" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "ptr"));
            B.for_ "j" ~hi:(B.int 3) [ B.("x" <-- v "x" + v "j") ];
            B.store "o" (B.v "ptr") (B.v "x");
            B.("ptr" <-- v "ptr" + int 2) ] ]
  in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  let ivs = A.Induction.find nest in
  Alcotest.(check int) "one IV" 1 (List.length ivs);
  let iv = List.hd ivs in
  Alcotest.(check string) "name" "ptr" iv.A.Induction.iv_var;
  Alcotest.(check int) "step" 2 iv.A.Induction.iv_step;
  let q, _ = A.Induction.rewrite p nest iv in
  Helpers.assert_equivalent ~msg:"IV rewrite" p q;
  (* after the rewrite the nest no longer carries ptr *)
  let nest' = A.Loop_nest.find_by_outer_index q "i" in
  Alcotest.(check bool) "no carried scalar" false
    (Sset.mem "ptr" (A.Legality.outer_carried_scalars nest'))

let test_induction_enables_squash () =
  let p =
    B.program "iv2"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("ptr", Types.Tint);
          ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 64; B.output "o" 64 ]
      [ B.("ptr" <-- int 0);
        B.for_ "i" ~hi:(B.int 8)
          [ B.("x" <-- load "a" (v "ptr"));
            B.for_ "j" ~hi:(B.int 3)
              [ B.("x" <-- band (v "x" + int 1) (int 255)) ];
            B.store "o" (B.v "ptr") (B.v "x");
            B.("ptr" <-- v "ptr" + int 1) ] ]
  in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  let verdict = A.Legality.check nest ~ds:2 in
  Alcotest.(check bool) "legal via IV rewrite" true verdict.A.Legality.ok;
  Alcotest.(check int) "one rewrite needed" 1
    (List.length verdict.A.Legality.induction_rewrites);
  let out = Uas_transform.Squash.apply p nest ~ds:2 in
  Helpers.assert_equivalent ~msg:"squash with IV" p
    out.Uas_transform.Squash.program

(* --- dependence analysis --- *)

let nest_of_accesses ~m ~n ~wr_idx ~rd_idx =
  let p =
    B.program "dep"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.local_array "a" 256; B.output "o" 256 ]
      [ B.for_ "i" ~lo:(B.int 8) ~hi:(B.int (8 + m))
          [ B.("x" <-- load "a" rd_idx);
            B.for_ "j" ~hi:(B.int n) [ B.("x" <-- v "x" + int 1) ];
            B.store "a" wr_idx (B.v "x");
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  A.Loop_nest.find_by_outer_index p "i"

let outer_dist nest arr =
  let pairs = A.Dependence.all_pairs nest in
  List.filter_map
    (fun ((x : A.Dependence.access), _, d) ->
      if x.A.Dependence.acc_array = arr then Some d else None)
    pairs

let test_dependence_same_element () =
  (* write a[i], read a[i]: distance 0 only *)
  let nest = nest_of_accesses ~m:8 ~n:3 ~wr_idx:(B.v "i") ~rd_idx:(B.v "i") in
  let ds = outer_dist nest "a" in
  Alcotest.(check bool) "all distance 0" true
    (List.for_all
       (fun d -> d = A.Dependence.Exact 0 || d = A.Dependence.No_dependence)
       ds);
  Alcotest.(check bool) "squash legal" true (A.Legality.transformable nest ~ds:4)

let test_dependence_distance_one () =
  (* write a[i], read a[i-1]: outer distance 1 -> case 3 at ds>=2 *)
  let nest =
    nest_of_accesses ~m:8 ~n:3 ~wr_idx:(B.v "i") ~rd_idx:B.(v "i" - int 1)
  in
  let ds = outer_dist nest "a" in
  Alcotest.(check bool) "has distance 1" true
    (List.exists (fun d -> d = A.Dependence.Exact 1) ds);
  Alcotest.(check bool) "squash illegal at 2" false
    (A.Legality.transformable nest ~ds:2)

let test_dependence_far_apart () =
  (* write a[i], read a[i-16]: case 2 for ds <= 16 *)
  let nest =
    nest_of_accesses ~m:8 ~n:3 ~wr_idx:(B.v "i") ~rd_idx:B.(v "i" - int 16)
  in
  Alcotest.(check bool) "squash legal at 4" true
    (A.Legality.transformable nest ~ds:4);
  Alcotest.(check bool) "squash legal at 8" true
    (A.Legality.transformable nest ~ds:8)

let test_dependence_strided () =
  (* write a[2i], read a[2i+1]: never conflict *)
  let nest =
    nest_of_accesses ~m:8 ~n:3 ~wr_idx:B.(v "i" * int 2)
      ~rd_idx:B.(v "i" * int 2 + int 1)
  in
  let ds = outer_dist nest "a" in
  (* the store's self-pair is Exact 0 (case 1); everything else must be
     provably independent *)
  Alcotest.(check bool) "independent" true
    (List.for_all
       (fun d -> d = A.Dependence.No_dependence || d = A.Dependence.Exact 0)
       ds);
  Alcotest.(check bool) "no cross-iteration conflicts" true
    (A.Legality.transformable nest ~ds:8)

let test_affine_extraction () =
  let p = Helpers.ch4_loop ~m:4 ~n:3 in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  match A.Dependence.affine_of nest B.(v "i" * int 4 + v "j" + int 3) with
  | Some a ->
    Alcotest.(check int) "ci" 4 a.A.Dependence.ci;
    Alcotest.(check int) "cj" 1 a.A.Dependence.cj;
    Alcotest.(check int) "c0" 3 a.A.Dependence.c0
  | None -> Alcotest.fail "expected affine form"

(* --- legality shape checks --- *)

let test_legality_requires_straight_line () =
  let p =
    B.program "iffy"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 4; B.output "o" 4 ]
      [ B.for_ "i" ~hi:(B.int 4)
          [ B.("x" <-- load "a" (v "i"));
            B.for_ "j" ~hi:(B.int 2)
              [ B.if_ B.(v "x" > int 0) [ B.("x" <-- v "x" - int 1) ] [] ];
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  let v = A.Legality.check nest ~ds:2 in
  Alcotest.(check bool) "illegal" false v.A.Legality.ok;
  Alcotest.(check bool) "right reason" true
    (List.mem A.Legality.Inner_not_straight_line v.A.Legality.violations)

let test_legality_variant_bounds () =
  let p =
    B.program "varbound"
      ~locals:
        [ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" 4; B.output "o" 4 ]
      [ B.for_ "i" ~hi:(B.int 4)
          [ B.("x" <-- load "a" (v "i"));
            B.for_ "j" ~hi:(B.v "i") [ B.("x" <-- v "x" + int 1) ];
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  let v = A.Legality.check nest ~ds:2 in
  Alcotest.(check bool) "illegal" false v.A.Legality.ok

let test_legality_peel_count () =
  let p = Helpers.fg_loop ~m:10 ~n:2 in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  let v = A.Legality.check nest ~ds:4 in
  Alcotest.(check bool) "legal" true v.A.Legality.ok;
  Alcotest.(check int) "peel 2" 2 v.A.Legality.needs_peel

(* --- SSA --- *)

let test_ssa_single_assignment () =
  let ssa = A.Ssa.convert fg_body in
  let defs = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match s with
      | Stmt.Assign (x, _) ->
        Alcotest.(check bool) ("unique def " ^ x) false (Hashtbl.mem defs x);
        Hashtbl.add defs x ()
      | _ -> ())
    ssa.A.Ssa.ssa_body;
  (* live-in of a is version 0, live-out is a later version *)
  let live_in_a = A.Ssa.Smap.find "a" ssa.A.Ssa.live_in in
  let live_out_a = A.Ssa.Smap.find "a" ssa.A.Ssa.live_out in
  Alcotest.(check string) "live in" "a#0" live_in_a;
  Alcotest.(check bool) "live out differs" false
    (String.equal live_in_a live_out_a)

let test_ssa_roundtrip () =
  let ssa = A.Ssa.convert fg_body in
  let back = A.Ssa.deconvert ssa in
  Alcotest.(check bool) "deconvert = original" true
    (Stmt.equal_list fg_body back)

let test_ssa_qcheck_roundtrip =
  (* random straight-line blocks: SSA then base-name stripping is the
     identity, and evaluation is preserved through SSA *)
  let gen_block st =
    let vars = [| "p"; "q"; "r" |] in
    List.init
      (QCheck.Gen.int_range 1 8 st)
      (fun _ ->
        let dst = vars.(QCheck.Gen.int_range 0 2 st) in
        let a = Expr.Var vars.(QCheck.Gen.int_range 0 2 st) in
        let b = Expr.Var vars.(QCheck.Gen.int_range 0 2 st) in
        Stmt.Assign (dst, Expr.Binop (Types.Add, a, b)))
  in
  let arb =
    QCheck.make gen_block ~print:(fun b ->
        String.concat "\n" (List.map Pp.stmt_to_string b))
  in
  QCheck.Test.make ~name:"ssa roundtrip (random blocks)" ~count:100 arb
    (fun block ->
      let ssa = A.Ssa.convert block in
      Stmt.equal_list block (A.Ssa.deconvert ssa))

let base_suite =
  [ Alcotest.test_case "upward exposed" `Quick test_upward_exposed;
    Alcotest.test_case "for summary hides index" `Quick
      test_for_summary_hides_index;
    Alcotest.test_case "block liveness" `Quick test_liveness_block;
    Alcotest.test_case "find nest" `Quick test_find_nest;
    Alcotest.test_case "nest roundtrip" `Quick test_nest_roundtrip;
    Alcotest.test_case "triple nest" `Quick test_triple_nest_found;
    Alcotest.test_case "induction rewrite" `Quick
      test_induction_found_and_rewritten;
    Alcotest.test_case "induction enables squash" `Quick
      test_induction_enables_squash;
    Alcotest.test_case "dependence same element" `Quick
      test_dependence_same_element;
    Alcotest.test_case "dependence distance 1" `Quick
      test_dependence_distance_one;
    Alcotest.test_case "dependence far apart" `Quick test_dependence_far_apart;
    Alcotest.test_case "dependence strided" `Quick test_dependence_strided;
    Alcotest.test_case "affine extraction" `Quick test_affine_extraction;
    Alcotest.test_case "legality straight line" `Quick
      test_legality_requires_straight_line;
    Alcotest.test_case "legality variant bounds" `Quick
      test_legality_variant_bounds;
    Alcotest.test_case "legality peel count" `Quick test_legality_peel_count;
    Alcotest.test_case "ssa single assignment" `Quick
      test_ssa_single_assignment;
    Alcotest.test_case "ssa roundtrip" `Quick test_ssa_roundtrip;
    QCheck_alcotest.to_alcotest test_ssa_qcheck_roundtrip ]

(* --- more dependence-solver edge cases --- *)

let test_dependence_outer_bounded () =
  (* i*n + j style accesses: without bounding di by the outer range the
     GCD test reports spurious far-apart conflicts *)
  let m = 4 and n = 6 in
  let p =
    B.program "rowmajor"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.input "a" (m * n); B.output "o" (m * n) ]
      [ B.for_ "i" ~hi:(B.int m)
          [ B.("x" <-- int 0);
            B.for_ "j" ~hi:(B.int n)
              [ B.("x" <-- v "x" + load "a" ((v "i" * int n) + v "j"));
                B.store "o" B.((v "i" * int n) + v "j") (B.v "x") ] ] ]
  in
  (* a 1-deep-in-2-deep shape: pre/post empty; the store self-pair has
     conflicts only at di = 0 once di is bounded by the outer range *)
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  List.iter
    (fun (x, _, d) ->
      if x.A.Dependence.acc_array = "o" then
        match d with
        | A.Dependence.Exact 0 | A.Dependence.No_dependence -> ()
        | d ->
          Alcotest.failf "unexpected distance %a"
            A.Dependence.pp_outer_distance d)
    (A.Dependence.all_pairs nest)

let test_dependence_symbolic_bases () =
  (* base + i with the same symbolic base on both sides: exact distance;
     with different bases: unknown (conservative) *)
  let mk rd =
    let p =
      B.program "sym"
        ~params:[ ("base", Types.Tint); ("other", Types.Tint) ]
        ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
        ~arrays:[ B.local_array "a" 64; B.output "o" 64 ]
        [ B.for_ "i" ~hi:(B.int 8)
            [ B.("x" <-- load "a" rd);
              B.for_ "j" ~hi:(B.int 2) [ B.("x" <-- v "x" + int 1) ];
              B.store "a" B.(v "base" + v "i") (B.v "x");
              B.store "o" (B.v "i") (B.v "x") ] ]
    in
    A.Loop_nest.find_by_outer_index p "i"
  in
  let dist_of nest =
    List.find_map
      (fun (x, y, d) ->
        if
          x.A.Dependence.acc_array = "a"
          && (x.A.Dependence.acc_is_write <> y.A.Dependence.acc_is_write)
        then Some d
        else None)
      (A.Dependence.all_pairs nest)
  in
  (match dist_of (mk B.(v "base" + v "i" - int 2)) with
  | Some (A.Dependence.Exact d) ->
    Alcotest.(check int) "same base distance" 2 (abs d)
  | d ->
    Alcotest.failf "expected Exact, got %a"
      Fmt.(option A.Dependence.pp_outer_distance)
      d);
  match dist_of (mk B.(v "other" + v "i" - int 2)) with
  | Some A.Dependence.Any -> ()
  | d ->
    Alcotest.failf "expected Any for mixed bases, got %a"
      Fmt.(option A.Dependence.pp_outer_distance)
      d

let test_legality_within_case2 () =
  (* distance interval entirely outside the window: legal (case 2) *)
  let p =
    B.program "far"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.local_array "a" 128; B.output "o" 64 ]
      [ B.for_ "i" ~hi:(B.int 16)
          [ B.("x" <-- load "a" (v "i"));
            B.for_ "j" ~hi:(B.int 2) [ B.("x" <-- v "x" + v "j") ];
            B.store "a" B.(v "i" + int 40) (B.v "x");
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  let nest = A.Loop_nest.find_by_outer_index p "i" in
  Alcotest.(check bool) "legal at 8 (distance 40 > 7)" true
    (A.Legality.transformable nest ~ds:8);
  (* at DS = 41 the window reaches the dependence - but peeling already
     caps DS at the trip count; use a wider loop to see the rejection *)
  let p2 =
    B.program "near"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ B.local_array "a" 128; B.output "o" 64 ]
      [ B.for_ "i" ~hi:(B.int 64)
          [ B.("x" <-- load "a" (v "i"));
            B.for_ "j" ~hi:(B.int 2) [ B.("x" <-- v "x" + v "j") ];
            B.store "a" B.(v "i" + int 4) (B.v "x");
            B.store "o" (B.v "i") (B.v "x") ] ]
  in
  let nest2 = A.Loop_nest.find_by_outer_index p2 "i" in
  Alcotest.(check bool) "legal at 4 (distance 4 outside [-3,3])" true
    (A.Legality.transformable nest2 ~ds:4);
  Alcotest.(check bool) "illegal at 8 (distance 4 inside [-7,7])" false
    (A.Legality.transformable nest2 ~ds:8)

let extra_suite =
  [ Alcotest.test_case "dependence outer-bounded" `Quick
      test_dependence_outer_bounded;
    Alcotest.test_case "dependence symbolic bases" `Quick
      test_dependence_symbolic_bases;
    Alcotest.test_case "legality case 2 windows" `Quick
      test_legality_within_case2 ]

let suite = base_suite @ extra_suite
