(* Golden initiation intervals for the full benchmark suite at the
   paper's default sizes and target.  These pin the behaviour of the
   whole stack — benchmarks, DFG construction, memory disambiguation,
   recurrence analysis and the modulo scheduler — so an accidental
   regression in any layer shows up as a changed II.

   If a deliberate improvement shifts a value, update the table AND the
   corresponding discussion in EXPERIMENTS.md. *)

module S = Uas_bench_suite
module N = Uas_core.Nimble

(* (benchmark, [original; pipelined; squash 2/4/8/16; jam 2/4/8/16]) *)
let golden_iis =
  [ ("Skipjack-mem", [ 33; 21; 11; 6; 4; 4; 21; 23; 41; 72 ]);
    ("Skipjack-hw", [ 28; 17; 9; 5; 3; 2; 17; 17; 17; 17 ]);
    ("DES-mem", [ 17; 17; 9; 5; 5; 5; 17; 19; 36; 72 ]);
    ("DES-hw", [ 14; 14; 7; 4; 2; 1; 14; 14; 14; 14 ]);
    ("IIR", [ 70; 10; 5; 3; 2; 1; 10; 10; 12; 24 ]) ]

let test_golden_iis () =
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let expected = List.assoc b.S.Registry.b_name golden_iis in
      let rows =
        N.sweep b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index
        |> N.successes
      in
      let got =
        List.map (fun (_, _, r) -> r.Uas_hw.Estimate.r_ii) rows
      in
      Alcotest.(check (list int))
        (b.S.Registry.b_name ^ " initiation intervals")
        expected got)
    (S.Registry.all ())

(* spot checks of the structural counts that drive the area story *)
let test_golden_structure () =
  let check name ~mem ~ops (b : S.Registry.benchmark) =
    let r =
      Uas_hw.Estimate.kernel ~pipelined:false b.S.Registry.b_program
        ~index:b.S.Registry.b_inner_index
    in
    Alcotest.(check int) (name ^ " memory refs") mem
      r.Uas_hw.Estimate.r_mem_refs;
    Alcotest.(check int) (name ^ " operators") ops
      r.Uas_hw.Estimate.r_operators
  in
  check "skipjack-mem" ~mem:8 ~ops:42 (S.Registry.skipjack_mem ());
  check "skipjack-hw" ~mem:0 ~ops:42 (S.Registry.skipjack_hw ());
  check "des-mem" ~mem:9 ~ops:73 (S.Registry.des_mem ());
  check "iir" ~mem:2 ~ops:42 (S.Registry.iir ())

let suite =
  [ Alcotest.test_case "golden IIs" `Slow test_golden_iis;
    Alcotest.test_case "golden structure" `Quick test_golden_structure ]
