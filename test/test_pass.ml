(* The pass pipeline layer: compilation-unit memoization and
   invalidation, structured diagnostics for illegal factors, the
   [--dump-after] hook contract, and the [pass.<name>] span naming the
   runner guarantees. *)

module S = Uas_bench_suite
module N = Uas_core.Nimble
module Cu = Uas_pass.Cu
module Pass = Uas_pass.Pass
module Diag = Uas_pass.Diag
module Instrument = Uas_runtime.Instrument

let simple () = S.Simple.fg_loop ~m:8 ~n:8

(* a nest whose inner recurrence scalar is carried across OUTER
   iterations too: squash and jam are both illegal at every factor *)
let outer_carried () =
  let open Uas_ir.Builder in
  program "acc"
    ~locals:
      [ ("i", Uas_ir.Types.Tint); ("j", Uas_ir.Types.Tint);
        ("s", Uas_ir.Types.Tint) ]
    ~arrays:[ input "a" 8; output "o" 8 ]
    [ ("s" <-- int 0);
      for_ "i" ~hi:(int 8)
        [ for_ "j" ~hi:(int 4) [ "s" <-- v "s" + load "a" (v "i") ];
          store "o" (v "i") (v "s") ] ]

(* --- compilation-unit cache --- *)

let test_cu_memoization () =
  let cu = Cu.make (simple ()) ~outer_index:"i" ~inner_index:"j" in
  Alcotest.(check bool) "nothing cached initially" false
    (List.exists (Cu.cached cu) Cu.all_analyses);
  let n1 = Cu.nest cu in
  Alcotest.(check int) "first lookup misses" 1 (Cu.misses cu);
  Alcotest.(check int) "first lookup does not hit" 0 (Cu.hits cu);
  let n2 = Cu.nest cu in
  Alcotest.(check int) "second lookup hits" 1 (Cu.hits cu);
  Alcotest.(check int) "second lookup does not recompute" 1 (Cu.misses cu);
  Alcotest.(check bool) "same nest" true (n1 == n2);
  ignore (Cu.def_use cu);
  ignore (Cu.liveness cu);
  ignore (Cu.induction cu);
  ignore (Cu.dependence cu);
  List.iter
    (fun a ->
      Alcotest.(check bool) (Cu.analysis_name a ^ " cached") true
        (Cu.cached cu a))
    Cu.all_analyses

let test_cu_invalidation () =
  let cu = Cu.make (simple ()) ~outer_index:"i" ~inner_index:"j" in
  ignore (Cu.nest cu);
  ignore (Cu.def_use cu);
  let cu' = Cu.with_program cu (Cu.program cu) in
  Alcotest.(check bool) "nest dropped" false (Cu.cached cu' Cu.Nest);
  Alcotest.(check bool) "def/use dropped" false (Cu.cached cu' Cu.Def_use);
  let cu'' = Cu.with_program ~preserves:[ Cu.Nest ] cu (Cu.program cu) in
  Alcotest.(check bool) "preserved nest survives" true
    (Cu.cached cu'' Cu.Nest);
  Alcotest.(check bool) "unpreserved def/use dropped" false
    (Cu.cached cu'' Cu.Def_use)

let test_cu_artifacts_always_invalidated () =
  let cu = Cu.make (simple ()) ~outer_index:"i" ~inner_index:"j" in
  (match Pass.run cu (N.estimate_passes N.Pipelined) with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "estimate pipeline failed: %a" Diag.pp d);
  Alcotest.(check bool) "dfg artifact set" true (Cu.dfg cu <> None);
  Alcotest.(check bool) "report artifact set" true (Cu.report cu <> None);
  let cu' = Cu.with_program ~preserves:Cu.all_analyses cu (Cu.program cu) in
  Alcotest.(check bool) "dfg dropped on program change" true
    (Cu.dfg cu' = None);
  Alcotest.(check bool) "schedule dropped on program change" true
    (Cu.schedule cu' = None);
  Alcotest.(check bool) "report dropped on program change" true
    (Cu.report cu' = None)

(* --- diagnostics --- *)

let test_illegal_squash_diag () =
  match
    N.build_version_result (outer_carried ()) ~outer_index:"i"
      ~inner_index:"j" (N.Squashed 4)
  with
  | Ok _ -> Alcotest.fail "outer-carried scalar must not squash"
  | Error d ->
    Alcotest.(check bool) "severity" true (d.Diag.d_severity = Diag.Error);
    Alcotest.(check string) "pass" "squash" d.Diag.d_pass;
    Alcotest.(check (option string)) "loop" (Some "i")
      d.Diag.d_loc.Diag.loc_loop;
    (* the rendered form carries severity, pass and location *)
    let s = Fmt.str "%a" Diag.pp d in
    Alcotest.(check bool) "rendered mentions pass" true
      (Helpers.contains ~sub:"[squash]" s);
    Alcotest.(check bool) "rendered mentions loop" true
      (Helpers.contains ~sub:"loop i" s)

let test_illegal_jam_diag () =
  match
    N.build_version_result (outer_carried ()) ~outer_index:"i"
      ~inner_index:"j" (N.Jammed 2)
  with
  | Ok _ -> Alcotest.fail "outer-carried scalar must not jam"
  | Error d ->
    Alcotest.(check bool) "severity" true (d.Diag.d_severity = Diag.Error);
    Alcotest.(check string) "pass" "jam" d.Diag.d_pass;
    Alcotest.(check (option string)) "loop" (Some "i")
      d.Diag.d_loc.Diag.loc_loop;
    Alcotest.(check bool) "message mentions the factor" true
      (Helpers.contains ~sub:"factor 2" d.Diag.d_message)

let test_unknown_nest_diag () =
  match
    N.build_version_result (simple ()) ~outer_index:"nope" ~inner_index:"j"
      (N.Squashed 2)
  with
  | Ok _ -> Alcotest.fail "unknown outer index must fail"
  | Error d ->
    Alcotest.(check string) "pass" "loop-nest" d.Diag.d_pass;
    Alcotest.(check bool) "message names the index" true
      (Helpers.contains ~sub:"nope" d.Diag.d_message)

(* --- dump-after hook --- *)

let test_dump_after_squash_golden () =
  (* the unit the hook observes after the squash pass is exactly the
     program a direct Squash.apply produces *)
  let p = simple () in
  let captured = ref None in
  let after ~pass cu =
    if pass = "squash" then captured := Some (Cu.program cu)
  in
  (match
     N.build_version_result ~after p ~outer_index:"i" ~inner_index:"j"
       (N.Squashed 4)
   with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "squash(4) on simple failed: %a" Diag.pp d);
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let direct = (Uas_transform.Squash.apply p nest ~ds:4).Uas_transform.Squash.program in
  match !captured with
  | None -> Alcotest.fail "hook never saw the squash pass"
  | Some dumped ->
    Alcotest.(check string) "post-squash IR matches direct transform"
      (Fmt.str "%a" Uas_ir.Pp.pp_program direct)
      (Fmt.str "%a" Uas_ir.Pp.pp_program dumped)

let test_dump_after_dfg_is_dot () =
  let seen_dot = ref None in
  let after ~pass cu =
    if pass = "dfg-build" then
      match Cu.dfg cu with
      | Some d ->
        seen_dot := Some (Uas_dfg.Dot.to_dot ~name:pass d.Uas_dfg.Build.d_graph)
      | None -> ()
  in
  (match
     N.run_version ~after (simple ()) ~outer_index:"i" ~inner_index:"j"
       N.Pipelined
   with
  | N.Built _ | N.Degraded _ -> ()
  | N.Skipped d -> Alcotest.failf "pipelined on simple skipped: %a" Diag.pp d);
  match !seen_dot with
  | None -> Alcotest.fail "hook never saw a DFG artifact"
  | Some dot ->
    Alcotest.(check bool) "DOT output" true
      (Helpers.contains ~sub:"digraph" dot)

let test_hook_sees_every_pass () =
  let order = ref [] in
  let after ~pass _cu = order := pass :: !order in
  (match
     N.run_version ~after (simple ()) ~outer_index:"i" ~inner_index:"j"
       (N.Combined (2, 2))
   with
  | N.Built _ | N.Degraded _ -> ()
  | N.Skipped d -> Alcotest.failf "combined skipped: %a" Diag.pp d);
  Alcotest.(check (list string))
    "pass order of the combined pipeline"
    [ "loop-nest"; "jam"; "squash"; "dfg-build"; "schedule"; "exact-ii";
      "estimate" ]
    (List.rev !order)

(* --- instrumentation --- *)

let test_runner_spans () =
  Instrument.reset ();
  Instrument.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_enabled false;
      Instrument.reset ())
    (fun () ->
      (match
         N.run_version (simple ()) ~outer_index:"i" ~inner_index:"j"
           (N.Squashed 2)
       with
      | N.Built _ | N.Degraded _ -> ()
      | N.Skipped d -> Alcotest.failf "squash(2) skipped: %a" Diag.pp d);
      let spans = List.map fst (Instrument.spans ()) in
      List.iter
        (fun s ->
          Alcotest.(check bool) (s ^ " span recorded") true
            (List.mem s spans))
        [ "pass.loop-nest"; "pass.squash"; "pass.dfg-build"; "pass.schedule";
          "pass.estimate" ];
      let counters = Instrument.counters () in
      Alcotest.(check bool) "analysis cache counters recorded" true
        (List.mem_assoc "cu.analysis-miss" counters))

let suite =
  [ Alcotest.test_case "cu memoization" `Quick test_cu_memoization;
    Alcotest.test_case "cu invalidation" `Quick test_cu_invalidation;
    Alcotest.test_case "cu artifacts invalidated" `Quick
      test_cu_artifacts_always_invalidated;
    Alcotest.test_case "illegal squash diagnostic" `Quick
      test_illegal_squash_diag;
    Alcotest.test_case "illegal jam diagnostic" `Quick test_illegal_jam_diag;
    Alcotest.test_case "unknown nest diagnostic" `Quick
      test_unknown_nest_diag;
    Alcotest.test_case "dump-after squash golden" `Quick
      test_dump_after_squash_golden;
    Alcotest.test_case "dump-after dfg is DOT" `Quick
      test_dump_after_dfg_is_dot;
    Alcotest.test_case "hook sees every pass" `Quick
      test_hook_sees_every_pass;
    Alcotest.test_case "runner spans" `Quick test_runner_spans ]
