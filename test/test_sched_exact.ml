(* The exact second II oracle: branch-and-bound certification of the
   optimal initiation interval, the shared schedule-validity checker
   all three scheduling backends must satisfy, and the heuristic's
   optimality gap — including a hand-built nest where the heuristic is
   provably loose, and the effort-budget degradation paths. *)

open Uas_ir
module D = Uas_dfg
module B = Builder
module Sd = D.Sched

let build body = fst (D.Build.build ~inner_index:"j" body)

let check_ok name g s =
  match Sd.check_schedule g s with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "%s: %s" name (String.concat "; " msgs)

let check_rejected name g s =
  match Sd.check_schedule g s with
  | Ok () -> Alcotest.failf "%s: invalid schedule accepted" name
  | Error _ -> ()

(* the classic a -> b -> a recurrence: RecMII 4, every edge of the
   cycle tight at II 4 *)
let fg_body =
  [ B.("b" <-- band (v "a" + int 3) (int 255));
    B.("a" <-- bxor (v "b" + v "b") (int 21)) ]

(* k loads + 1 store on two ports: ResMII = ceil((k+1)/2) *)
let mem_heavy_body k =
  List.init k (fun t ->
      B.(Printf.sprintf "x%d" t <-- load "a" (v "j" + int t)))
  @ [ B.store "o" (B.v "j")
        (List.fold_left
           (fun acc t -> B.(acc + v (Printf.sprintf "x%d" t)))
           (B.int 0)
           (List.init k (fun t -> t))) ]

(* k jammed copies of a distance-1 memory recurrence (w[j] from
   w[j-1]): RecMII 5 per copy, 2k memory ops.  At k = 5 the ports are
   exactly saturated at the recurrence bound and the iterative
   heuristic provably leaves a gap: it settles at II 6 where the exact
   oracle certifies a witness at the lower bound 5. *)
let jam_rec k =
  List.concat
    (List.init k (fun c ->
         let x = Printf.sprintf "x%d" c in
         let w = Printf.sprintf "w%d" c in
         [ B.(x <-- load w (v "j" - int 1));
           B.(x <-- band (v x + int 3) (int 255));
           B.store w (B.v "j") (B.v x) ]))

let bodies =
  [ ("fg", fg_body);
    ("mem-heavy 4", mem_heavy_body 4);
    ("mem-heavy 9", mem_heavy_body 9);
    ("jam-rec 3", jam_rec 3);
    ("jam-rec 5", jam_rec 5) ]

(* --- the validity checker accepts what the backends produce --- *)

let test_check_accepts_backends () =
  List.iter
    (fun (name, body) ->
      let g = build body in
      check_ok (name ^ " list") g (Sd.list_schedule g);
      check_ok (name ^ " modulo") g (Sd.modulo_schedule g))
    bodies

(* --- the exact oracle certifies, and brackets the heuristic --- *)

let test_exact_certifies () =
  List.iter
    (fun (name, body) ->
      let g = build body in
      let h = Sd.modulo_schedule g in
      let e = Sd.optimal_schedule ~witness:h g in
      (match e.Sd.e_status with
      | Sd.Exact_optimal -> ()
      | s -> Alcotest.failf "%s: not certified (%s)" name (Sd.exact_status_name s));
      match e.Sd.e_schedule with
      | None -> Alcotest.failf "%s: certified but no witness" name
      | Some w ->
        check_ok (name ^ " exact witness") g w;
        let lb = Sd.min_ii Sd.default_config g in
        Alcotest.(check bool)
          (name ^ " min_ii <= optimal") true
          (lb <= w.Sd.s_ii);
        Alcotest.(check bool)
          (name ^ " optimal <= heuristic") true
          (w.Sd.s_ii <= h.Sd.s_ii);
        Alcotest.(check int)
          (name ^ " proved = optimal") w.Sd.s_ii e.Sd.e_proved)
    bodies

let test_hand_built_loose () =
  (* the jam-rec 5 nest: the heuristic settles one slot above the
     certified optimum, so the reported gap is exactly 1 *)
  let g = build (jam_rec 5) in
  Alcotest.(check int) "lower bound" 5 (Sd.min_ii Sd.default_config g);
  let h = Sd.modulo_schedule g in
  Alcotest.(check int) "heuristic II" 6 h.Sd.s_ii;
  let e = Sd.optimal_schedule ~witness:h g in
  (match (e.Sd.e_status, e.Sd.e_schedule) with
  | Sd.Exact_optimal, Some w ->
    Alcotest.(check int) "certified optimum" 5 w.Sd.s_ii;
    check_ok "loose witness" g w
  | _ -> Alcotest.failf "expected a certified optimum");
  let rendered = Fmt.str "%a" Sd.pp_gap (h.Sd.s_ii, e) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool)
    "footnote reports gap 1" true
    (contains rendered "gap 1")

(* --- mutation: perturbing a valid schedule is caught --- *)

let test_mutation_caught () =
  (* mem-heavy 9: 10 memory ops at II 5 fill every reservation slot,
     so moving any memory op by one cycle lands in a full slot (or
     breaks a dependence / goes negative) — the checker must object *)
  let g = build (mem_heavy_body 9) in
  let s = Sd.modulo_schedule g in
  Alcotest.(check int) "port-saturated II" 5 s.Sd.s_ii;
  check_ok "baseline valid" g s;
  Array.iteri
    (fun i _ ->
      if Uas_ir.Opinfo.uses_memory_port (D.Graph.node g i).D.Graph.kind then
        List.iter
          (fun delta ->
            let times = Array.copy s.Sd.s_times in
            times.(i) <- times.(i) + delta;
            let mutated =
              { s with
                Sd.s_times = times;
                s_length = Array.fold_left max 0 times + 1 }
            in
            check_rejected
              (Printf.sprintf "node %d moved by %+d" i delta)
              g mutated)
          [ -1; 1 ])
    s.Sd.s_times

let test_tight_cycle_mutation_caught () =
  (* fg: the recurrence cycle has zero slack at II 4, so moving any
     real operator by one cycle violates a dependence *)
  let g = build fg_body in
  let s = Sd.modulo_schedule g in
  Alcotest.(check int) "tight II" 4 s.Sd.s_ii;
  Array.iteri
    (fun i n ->
      ignore n;
      match (D.Graph.node g i).D.Graph.kind with
      | Uas_ir.Opinfo.Op_binop _ ->
        List.iter
          (fun delta ->
            let times = Array.copy s.Sd.s_times in
            times.(i) <- times.(i) + delta;
            let mutated =
              { s with
                Sd.s_times = times;
                s_length = Array.fold_left max 0 times + 1 }
            in
            check_rejected
              (Printf.sprintf "cycle node %d moved by %+d" i delta)
              g mutated)
          [ -1; 1 ]
      | _ -> ())
    s.Sd.s_times

let test_negative_time_caught () =
  let g = build (mem_heavy_body 4) in
  let s = Sd.modulo_schedule g in
  let times = Array.copy s.Sd.s_times in
  times.(0) <- -1;
  check_rejected "negative issue time" g { s with Sd.s_times = times }

(* --- effort budgets degrade, deterministically and validly --- *)

let test_heuristic_effort_degrades () =
  (* the BENCH_sweep blowup, reduced: under a tiny relaxation budget
     the modulo scheduler must not spin — it degrades to the
     non-overlapped fallback (II = schedule length) with a note *)
  let g = build (jam_rec 5) in
  let sched, note = Sd.modulo_schedule_note ~effort:1 g in
  (match note with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a degradation note under effort 1");
  let l = Sd.list_schedule g in
  Alcotest.(check int) "fallback II = acyclic length" l.Sd.s_length
    sched.Sd.s_ii;
  check_ok "fallback still valid" g sched;
  (* with the default budget the same graph pipelines fine *)
  let _, note' = Sd.modulo_schedule_note g in
  Alcotest.(check bool) "no note at default effort" true (note' = None)

let test_exact_effort_degrades () =
  let g = build (jam_rec 5) in
  let h = Sd.modulo_schedule g in
  (* with a witness: budget exhaustion brackets the optimum *)
  let e = Sd.optimal_schedule ~effort:1 ~witness:h g in
  (match e.Sd.e_status with
  | Sd.Exact_feasible -> ()
  | s ->
    Alcotest.failf "expected feasible-with-witness, got %s"
      (Sd.exact_status_name s));
  Alcotest.(check bool) "budget flagged" true e.Sd.e_effort_exhausted;
  (match e.Sd.e_schedule with
  | Some w ->
    check_ok "bracketing witness" g w;
    Alcotest.(check bool) "bracket ordered" true (e.Sd.e_proved <= w.Sd.s_ii)
  | None -> Alcotest.fail "witness lost");
  Alcotest.(check bool) "proved >= min_ii" true
    (e.Sd.e_proved >= e.Sd.e_min_ii);
  (* without a witness: unknown *)
  let e' = Sd.optimal_schedule ~effort:1 g in
  (match e'.Sd.e_status with
  | Sd.Exact_unknown -> ()
  | s ->
    Alcotest.failf "expected unknown without witness, got %s"
      (Sd.exact_status_name s));
  Alcotest.(check bool) "no schedule claimed" true (e'.Sd.e_schedule = None)

(* --- the QCheck property: oracle invariants on random bodies --- *)

let gen_body st =
  let n_stmt = QCheck.Gen.int_range 2 10 st in
  List.init n_stmt (fun t ->
      let dst = Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st) in
      match QCheck.Gen.int_range 0 3 st with
      | 0 -> B.(dst <-- load "mem" (v "j" + int t))
      | 1 ->
        B.(dst
           <-- v (Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st)) + int t)
      | 2 ->
        B.(dst
           <-- band
                 (v (Printf.sprintf "v%d" (QCheck.Gen.int_range 0 4 st)))
                 (int 255))
      | _ -> B.store "mem" B.(v "j" + int (Stdlib.( + ) 100 t)) (B.v dst))

let test_qcheck_exact_brackets =
  let arb =
    QCheck.make gen_body ~print:(fun b ->
        String.concat "\n" (List.map Pp.stmt_to_string b))
  in
  QCheck.Test.make
    ~name:"exact oracle brackets the heuristic (random bodies)" ~count:80 arb
    (fun body ->
      let g = build body in
      let h = Sd.modulo_schedule g in
      let valid s = Sd.check_schedule g s = Ok () in
      let lb = Sd.min_ii Sd.default_config g in
      let e = Sd.optimal_schedule ~witness:h g in
      valid h
      && valid (Sd.list_schedule g)
      && e.Sd.e_min_ii = lb
      && e.Sd.e_min_ii <= e.Sd.e_proved
      (* soundness: the heuristic can never beat the proven bound *)
      && h.Sd.s_ii >= e.Sd.e_proved
      && e.Sd.e_status <> Sd.Exact_unknown
      &&
      match (e.Sd.e_status, e.Sd.e_schedule) with
      | Sd.Exact_optimal, Some w ->
        valid w && lb <= w.Sd.s_ii && w.Sd.s_ii <= h.Sd.s_ii
        && e.Sd.e_proved = w.Sd.s_ii
      | Sd.Exact_feasible, Some w -> valid w && e.Sd.e_proved <= w.Sd.s_ii
      | _ -> false)

let suite =
  [ Alcotest.test_case "checker accepts all backends" `Quick
      test_check_accepts_backends;
    Alcotest.test_case "exact certifies known bodies" `Quick
      test_exact_certifies;
    Alcotest.test_case "hand-built loose nest" `Quick test_hand_built_loose;
    Alcotest.test_case "mutation caught (ports)" `Quick test_mutation_caught;
    Alcotest.test_case "mutation caught (tight cycle)" `Quick
      test_tight_cycle_mutation_caught;
    Alcotest.test_case "negative time caught" `Quick test_negative_time_caught;
    Alcotest.test_case "heuristic effort degrades" `Quick
      test_heuristic_effort_degrades;
    Alcotest.test_case "exact effort degrades" `Quick
      test_exact_effort_degrades;
    QCheck_alcotest.to_alcotest test_qcheck_exact_brackets ]
