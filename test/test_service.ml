(* The nimbled service: frame round-trips and typed protocol errors,
   client backoff determinism, and a live in-process daemon exercised
   for request identity (daemon-served bytes = in-process bytes),
   concurrent clients at jobs 1 and 4, admission shedding under load,
   drain with in-flight work, protocol-error and disconnect
   containment, and per-request budgets. *)

module Protocol = Uas_service.Protocol
module Handler = Uas_service.Handler
module Client = Uas_service.Client
module Server = Uas_service.Server
module Fault = Uas_runtime.Fault
module Fi = Uas_ir.Fast_interp
module N = Uas_core.Nimble
module P = Uas_core.Planner
module Sched = Uas_dfg.Sched
module R = Uas_bench_suite.Registry

(* --- fixtures --- *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "uas-svc-%d-%d.sock" (Unix.getpid ()) !sock_counter)

(* Start a server on a fresh socket, run [f socket], then drain and
   assert the daemon exited cleanly ([run] returned [Ok ()]). *)
let with_server ?(configure = fun c -> c) f =
  let socket = fresh_socket () in
  let cfg = configure (Server.default_config ~socket) in
  let result = ref None in
  let th = Thread.create (fun () -> result := Some (Server.run cfg)) () in
  let rec wait n =
    if Sys.file_exists socket then ()
    else if n > 500 then Alcotest.fail "server did not come up"
    else begin
      Thread.delay 0.01;
      wait (n + 1)
    end
  in
  wait 0;
  Fun.protect
    ~finally:(fun () ->
      (* idempotent: a second DRAIN on a drained daemon is unreachable *)
      ignore
        (Client.call ~attempts:2 ~seed:0 socket
           (Handler.to_frame Handler.Drain));
      Thread.join th;
      match !result with
      | Some (Ok ()) -> ()
      | Some (Error m) -> Alcotest.failf "server exited with error: %s" m
      | None -> Alcotest.fail "server produced no result")
    (fun () -> f socket)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let sweep_work ?tier ?budget bench =
  Handler.W_sweep
    { Handler.s_bench = bench;
      s_validate = false;
      s_tier = tier;
      s_budget_s = budget }

let local_render work =
  match Handler.execute work with
  | Ok (payload, _) -> payload
  | Error m -> Alcotest.failf "local execute failed: %s" m

let reset_faults () =
  Fault.clear ();
  Fault.set_stall_cap 1.0

(* --- protocol: round-trips --- *)

let all_tags =
  [ Protocol.Hello; Protocol.Sweep; Protocol.Plan; Protocol.Estimate;
    Protocol.Stats; Protocol.Health; Protocol.Drain; Protocol.Reply_ok;
    Protocol.Reply_err; Protocol.Reply_busy ]

let test_frame_roundtrip () =
  let bodies =
    [ ""; "iir"; "line one\nline two\n"; "binary \000\255\n\" bytes";
      String.make 4096 'x' ]
  in
  List.iter
    (fun tag ->
      List.iter
        (fun body ->
          let frame = { Protocol.tag; body } in
          match Protocol.decode (Protocol.encode frame) with
          | Ok f ->
            Alcotest.(check bool)
              (Printf.sprintf "%s round-trips" (Protocol.tag_name tag))
              true
              (f.Protocol.tag = tag && String.equal f.Protocol.body body)
          | Error e ->
            Alcotest.failf "%s: %s" (Protocol.tag_name tag)
              (Protocol.error_message e))
        bodies)
    all_tags

(* back-to-back frames through a real pipe exercise read_frame's
   boundary handling *)
let test_frame_stream () =
  let rd, wr = Unix.pipe () in
  let ic = Unix.in_channel_of_descr rd in
  let oc = Unix.out_channel_of_descr wr in
  let frames =
    [ { Protocol.tag = Protocol.Hello; body = "client" };
      { Protocol.tag = Protocol.Sweep; body = "iir\nvalidate=false" };
      { Protocol.tag = Protocol.Reply_ok; body = "payload\nwith lines\n" } ]
  in
  List.iter (Protocol.write_frame oc) frames;
  close_out oc;
  List.iter
    (fun expect ->
      match Protocol.read_frame ic with
      | Ok f ->
        Alcotest.(check string) "streamed body" expect.Protocol.body
          f.Protocol.body
      | Error e -> Alcotest.failf "stream: %s" (Protocol.error_message e))
    frames;
  (match Protocol.read_frame ic with
  | Error Protocol.Closed -> ()
  | _ -> Alcotest.fail "expected Closed at end of stream");
  close_in ic

(* --- protocol: typed rejection --- *)

let check_error name expected s =
  match Protocol.decode s with
  | Ok _ -> Alcotest.failf "%s: expected %s, decoded fine" name expected
  | Error e ->
    let tag =
      match e with
      | Protocol.Closed -> "closed"
      | Protocol.Truncated _ -> "truncated"
      | Protocol.Oversized _ -> "oversized"
      | Protocol.Garbage _ -> "garbage"
      | Protocol.Version_mismatch _ -> "version"
      | Protocol.Checksum_mismatch -> "checksum"
    in
    Alcotest.(check string) name expected tag

let test_typed_errors () =
  let good = Protocol.encode { Protocol.tag = Protocol.Sweep; body = "iir" } in
  check_error "empty input" "closed" "";
  check_error "header cut mid-line" "truncated" "uas/1 SWEEP 3";
  check_error "body shorter than declared" "truncated"
    (String.sub good 0 (String.length good - 2));
  check_error "future protocol version" "version"
    "uas/9 SWEEP 3 00000000000000000000000000000000\niir";
  check_error "not a frame at all" "garbage" "GET / HTTP/1.0\r\n\r\n";
  check_error "unknown tag" "garbage"
    "uas/1 FROB 3 00000000000000000000000000000000\niir";
  check_error "unparsable length" "garbage"
    "uas/1 SWEEP nope 00000000000000000000000000000000\niir";
  (* a declared length beyond the cap is refused before any body read *)
  (match
     Protocol.decode ~max_len:64
       (Protocol.encode
          { Protocol.tag = Protocol.Sweep; body = String.make 100 'a' })
   with
  | Error (Protocol.Oversized { len = 100; max = 64 }) -> ()
  | Error e -> Alcotest.failf "oversized: got %s" (Protocol.error_message e)
  | Ok _ -> Alcotest.fail "oversized: decoded fine");
  (* a flipped body byte fails the header checksum *)
  let corrupt = Bytes.of_string good in
  let last = Bytes.length corrupt - 1 in
  Bytes.set corrupt last (Char.chr (Char.code (Bytes.get corrupt last) lxor 1));
  check_error "flipped body byte" "checksum" (Bytes.to_string corrupt);
  check_error "trailing junk after body" "garbage" (good ^ "extra")

(* --- handler request round-trips --- *)

let test_request_roundtrip () =
  let requests =
    [ Handler.Hello "nimblec";
      Handler.Stats;
      Handler.Health;
      Handler.Drain;
      Handler.Work
        (Handler.W_estimate
           { Handler.e_bench = "iir";
             e_verify = true;
             e_tier = Fi.tier_of_string "native";
             e_validate = true;
             e_exact = Sched.Exact_report;
             e_budget_s = Some 2.5 });
      Handler.Work (sweep_work ~tier:(Option.get (Fi.tier_of_string "ref")) "fir");
      Handler.Work
        (Handler.W_plan
           { Handler.p_bench = "des-mem";
             p_objective = P.Ratio;
             p_validate = false;
             p_exact = Sched.Exact_check;
             p_budget_s = None }) ]
  in
  List.iter
    (fun req ->
      match Handler.parse (Handler.to_frame req) with
      | Ok req' ->
        Alcotest.(check bool) "request round-trips" true (req = req')
      | Error m -> Alcotest.failf "parse: %s" m)
    requests;
  (* malformed bodies are one-line errors, not exceptions *)
  let reject name frame =
    match Handler.parse frame with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected a parse error" name
  in
  reject "empty work body" { Protocol.tag = Protocol.Sweep; body = "" };
  reject "unknown option key"
    { Protocol.tag = Protocol.Sweep; body = "iir\nfrobnicate=yes" };
  reject "bad tier" { Protocol.tag = Protocol.Sweep; body = "iir\ntier=slow" };
  reject "bad budget"
    { Protocol.tag = Protocol.Sweep; body = "iir\nbudget=-1" };
  reject "reply tag as request"
    { Protocol.tag = Protocol.Reply_ok; body = "" }

(* --- client backoff determinism --- *)

let test_backoff_schedule () =
  let a = Client.backoff_schedule ~attempts:5 ~base_s:0.05 ~seed:42 in
  let b = Client.backoff_schedule ~attempts:5 ~base_s:0.05 ~seed:42 in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" a b;
  Alcotest.(check int) "attempts-1 delays" 4 (List.length a);
  List.iteri
    (fun k d ->
      let lo = 0.05 *. (2. ** float_of_int k) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in [base*2^k, 1.5*base*2^k)" k)
        true
        (d >= lo && d < 1.5 *. lo))
    a;
  let c = Client.backoff_schedule ~attempts:5 ~base_s:0.05 ~seed:43 in
  Alcotest.(check bool) "different seed decorrelates" true (a <> c)

let test_client_unreachable () =
  (* nobody listening: bounded retries, then a typed giving-up *)
  match
    Client.call ~attempts:2 ~base_s:0.001 ~seed:7 "/nonexistent/nimbled.sock"
      (Handler.to_frame Handler.Health)
  with
  | Client.Unreachable _ -> ()
  | Client.Served _ | Client.Rejected _ ->
    Alcotest.fail "expected Unreachable from a dead address"

(* --- live daemon: cheap verbs --- *)

let test_live_verbs () =
  with_server (fun socket ->
      (match
         Client.call ~seed:0 socket (Handler.to_frame (Handler.Hello "test"))
       with
      | Client.Served s ->
        Alcotest.(check bool) "hello advertises the protocol" true
          (Astring_contains.contains ~sub:"uas/1" s)
      | _ -> Alcotest.fail "hello not served");
      (match Client.call ~seed:0 socket (Handler.to_frame Handler.Health) with
      | Client.Served s ->
        Alcotest.(check bool) "health is ok" true
          (String.length s >= 2 && String.sub s 0 2 = "ok")
      | _ -> Alcotest.fail "health not served");
      match Client.call ~seed:0 socket (Handler.to_frame Handler.Stats) with
      | Client.Served s ->
        Alcotest.(check bool) "stats carries the daemon object" true
          (Astring_contains.contains ~sub:"\"daemon\":{\"admitted\":" s)
      | _ -> Alcotest.fail "stats not served")

(* --- live daemon: served bytes = local bytes --- *)

let test_estimate_identity () =
  with_server (fun socket ->
      let work =
        Handler.W_estimate
          { Handler.e_bench = "iir";
            e_verify = false;
            e_tier = None;
            e_validate = false;
            e_exact = Sched.Exact_off;
            e_budget_s = None }
      in
      match Client.serve_work ~seed:0 socket work with
      | Client.Served payload ->
        Alcotest.(check string) "daemon estimate = in-process estimate"
          (local_render work) payload
      | Client.Rejected m | Client.Unreachable m ->
        Alcotest.failf "estimate not served: %s" m)

let test_unknown_benchmark_rejected () =
  with_server (fun socket ->
      match Client.serve_work ~seed:0 socket (sweep_work "no-such-bench") with
      | Client.Rejected m ->
        Alcotest.(check bool) "names the known benchmarks" true
          (Astring_contains.contains ~sub:"unknown benchmark" m)
      | Client.Served _ -> Alcotest.fail "served a nonexistent benchmark"
      | Client.Unreachable m -> Alcotest.failf "daemon died: %s" m)

(* --- live daemon: concurrent clients --- *)

let concurrent_clients jobs () =
  with_server
    ~configure:(fun c ->
      { c with
        Server.c_limits = { Handler.no_limits with Handler.l_jobs = Some jobs }
      })
    (fun socket ->
      let benches = [ "iir"; "des-hw"; "skipjack-hw"; "des-mem" ] in
      let expected =
        List.map (fun b -> local_render (sweep_work b)) benches
      in
      let results = Array.make (List.length benches) None in
      let threads =
        List.mapi
          (fun i b ->
            Thread.create
              (fun () ->
                results.(i) <- Some (Client.serve_work ~seed:i socket
                                       (sweep_work b)))
              ())
          benches
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i b ->
          match results.(i) with
          | Some (Client.Served payload) ->
            Alcotest.(check string)
              (Printf.sprintf "%s served = local (jobs %d)" b jobs)
              (List.nth expected i) payload
          | Some (Client.Rejected m) | Some (Client.Unreachable m) ->
            Alcotest.failf "%s not served: %s" b m
          | None -> Alcotest.failf "%s: no outcome" b)
        benches)

(* --- live daemon: shedding under load --- *)

let test_shed_under_load () =
  reset_faults ();
  Fun.protect ~finally:reset_faults (fun () ->
      (* the first sweep stalls 0.4 s in the dispatcher; queue depth 1
         means the second waits and the third sheds *)
      (match Fault.arm "service.request=sweep:stall:1" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "arm: %s" m);
      Fault.set_stall_cap 0.4;
      with_server
        ~configure:(fun c -> { c with Server.c_queue_depth = 1 })
        (fun socket ->
          let frame = Handler.to_frame (Handler.Work (sweep_work "iir")) in
          let fd1, ic1, oc1 = raw_connect socket in
          Protocol.write_frame oc1 frame;
          Thread.delay 0.15 (* the dispatcher picks it up and stalls *);
          let fd2, ic2, oc2 = raw_connect socket in
          Protocol.write_frame oc2 frame;
          Thread.delay 0.1 (* it queues behind the stalled request *);
          let fd3, ic3, oc3 = raw_connect socket in
          Protocol.write_frame oc3 frame;
          (match Protocol.read_frame ic3 with
          | Ok { Protocol.tag = Protocol.Reply_busy; body } ->
            Alcotest.(check bool) "shed names the reason" true
              (Astring_contains.contains ~sub:"reason=queue-full" body);
            Alcotest.(check bool) "shed carries a retry-after hint" true
              (Option.is_some (Client.retry_after_hint body))
          | Ok f ->
            Alcotest.failf "expected BUSY, got %s" (Protocol.tag_name f.tag)
          | Error e -> Alcotest.failf "conn3: %s" (Protocol.error_message e));
          (match Protocol.read_frame ic1 with
          | Ok { Protocol.tag = Protocol.Reply_err; body } ->
            Alcotest.(check bool) "stalled request degrades to ERR" true
              (Astring_contains.contains ~sub:"injected" body)
          | Ok f ->
            Alcotest.failf "expected ERR on conn1, got %s"
              (Protocol.tag_name f.tag)
          | Error e -> Alcotest.failf "conn1: %s" (Protocol.error_message e));
          (match Protocol.read_frame ic2 with
          | Ok { Protocol.tag = Protocol.Reply_ok; body } ->
            Alcotest.(check string) "queued request is served intact"
              (local_render (sweep_work "iir")) body
          | Ok f ->
            Alcotest.failf "expected OK on conn2, got %s"
              (Protocol.tag_name f.tag)
          | Error e -> Alcotest.failf "conn2: %s" (Protocol.error_message e));
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ fd1; fd2; fd3 ];
          ignore (ic1, ic2, ic3, oc1, oc2, oc3)))

(* --- live daemon: drain with in-flight work --- *)

let test_drain_with_inflight () =
  reset_faults ();
  Fun.protect ~finally:reset_faults (fun () ->
      (match Fault.arm "service.request=sweep:stall:1" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "arm: %s" m);
      Fault.set_stall_cap 0.4;
      with_server (fun socket ->
          let fd1, ic1, oc1 = raw_connect socket in
          Protocol.write_frame oc1
            (Handler.to_frame (Handler.Work (sweep_work "iir")));
          Thread.delay 0.15 (* in flight, stalling *);
          let fd2, ic2, oc2 = raw_connect socket in
          Protocol.write_frame oc2 (Handler.to_frame Handler.Drain);
          Thread.delay 0.05;
          (* a late request is refused, not hung: sheds BUSY while the
             acceptor lives, unreachable once it stops *)
          (match
             Client.call ~attempts:1 ~seed:0 socket
               (Handler.to_frame (Handler.Work (sweep_work "des-hw")))
           with
          | Client.Served _ -> Alcotest.fail "admitted during drain"
          | Client.Rejected _ | Client.Unreachable _ -> ());
          (* the in-flight request still completes (degraded by its
             injected stall, but answered) *)
          (match Protocol.read_frame ic1 with
          | Ok { Protocol.tag = Protocol.Reply_err; _ } -> ()
          | Ok f ->
            Alcotest.failf "expected ERR on conn1, got %s"
              (Protocol.tag_name f.tag)
          | Error e -> Alcotest.failf "conn1: %s" (Protocol.error_message e));
          (* DRAIN answers once the queue is dry *)
          (match Protocol.read_frame ic2 with
          | Ok { Protocol.tag = Protocol.Reply_ok; body = "drained" } -> ()
          | Ok f ->
            Alcotest.failf "expected OK drained, got %s %s"
              (Protocol.tag_name f.tag) f.body
          | Error e -> Alcotest.failf "conn2: %s" (Protocol.error_message e));
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            [ fd1; fd2 ];
          ignore (ic1, ic2, oc1, oc2)))

(* --- live daemon: containment --- *)

let test_protocol_error_contained () =
  with_server (fun socket ->
      let fd, ic, oc = raw_connect socket in
      output_string oc "this is not a frame\n";
      flush oc;
      (match Protocol.read_frame ic with
      | Ok { Protocol.tag = Protocol.Reply_err; body } ->
        Alcotest.(check bool) "typed protocol ERR" true
          (Astring_contains.contains ~sub:"protocol:" body)
      | Ok f ->
        Alcotest.failf "expected ERR, got %s" (Protocol.tag_name f.tag)
      | Error e ->
        Alcotest.failf "no reply to garbage: %s" (Protocol.error_message e));
      (* the offending connection is dropped... *)
      (match Protocol.read_frame ic with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "offender not disconnected");
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ignore oc;
      (* ...and the daemon keeps serving everyone else *)
      match Client.serve_work ~seed:0 socket (sweep_work "iir") with
      | Client.Served payload ->
        Alcotest.(check string) "daemon survives garbage"
          (local_render (sweep_work "iir")) payload
      | Client.Rejected m | Client.Unreachable m ->
        Alcotest.failf "daemon degraded beyond the offender: %s" m)

let test_disconnect_contained () =
  with_server (fun socket ->
      (* enqueue a request, then vanish before the reply *)
      let fd, _ic, oc = raw_connect socket in
      Protocol.write_frame oc
        (Handler.to_frame (Handler.Work (sweep_work "iir")));
      Unix.close fd;
      Thread.delay 0.3;
      (* the daemon is still healthy and still serving *)
      (match Client.call ~seed:0 socket (Handler.to_frame Handler.Health) with
      | Client.Served _ -> ()
      | _ -> Alcotest.fail "daemon unhealthy after a disconnect");
      match Client.serve_work ~seed:0 socket (sweep_work "des-hw") with
      | Client.Served _ -> ()
      | Client.Rejected m | Client.Unreachable m ->
        Alcotest.failf "daemon degraded beyond the disconnect: %s" m)

let test_request_budget () =
  with_server (fun socket ->
      (* a microscopic budget times the request out with a typed ERR;
         the daemon survives and the abandoned worker cannot wedge it *)
      (match
         Client.serve_work ~seed:0 socket
           (sweep_work ~budget:0.0005 "des-mem")
       with
      | Client.Rejected m ->
        Alcotest.(check bool) "budget overrun is a typed timeout" true
          (Astring_contains.contains ~sub:"timed out" m)
      | Client.Served _ -> Alcotest.fail "served inside an impossible budget"
      | Client.Unreachable m -> Alcotest.failf "daemon died: %s" m);
      match Client.serve_work ~seed:0 socket (sweep_work "iir") with
      | Client.Served payload ->
        Alcotest.(check string) "daemon serves after a timeout"
          (local_render (sweep_work "iir")) payload
      | Client.Rejected m | Client.Unreachable m ->
        Alcotest.failf "daemon degraded after a timeout: %s" m)

(* --- the byte-identity property ---

   Daemon-served SWEEP output is byte-identical to in-process
   [Nimble.sweep] for every registry benchmark on all three
   interpreter tiers (the sweep pipeline is execution-free, so the
   tier provably cannot change its bytes): exhaustive over the
   product, plus a pinned-seed QCheck pass over random
   (benchmark, tier, validate) combinations. *)

let local_sweep_render (b : R.benchmark) =
  Handler.render_sweep
    (N.sweep
       ~versions:(Handler.sweep_versions b)
       b.R.b_program ~outer_index:b.R.b_outer_index
       ~inner_index:b.R.b_inner_index)

let tiers () =
  List.filter_map Fi.tier_of_string [ "ref"; "fast"; "native" ]

let test_sweep_identity_exhaustive () =
  with_server (fun socket ->
      List.iter
        (fun (b : R.benchmark) ->
          let expected = local_sweep_render b in
          List.iter
            (fun tier ->
              match
                Client.serve_work ~seed:0 socket
                  (sweep_work ~tier b.R.b_name)
              with
              | Client.Served payload ->
                Alcotest.(check string)
                  (Printf.sprintf "%s on %s tier" b.R.b_name
                     (Fi.tier_name tier))
                  expected payload
              | Client.Rejected m | Client.Unreachable m ->
                Alcotest.failf "%s/%s not served: %s" b.R.b_name
                  (Fi.tier_name tier) m)
            (tiers ()))
        (R.all () @ R.extras ()))

let test_sweep_identity_property () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 421)
    | None -> 421
  in
  with_server (fun socket ->
      let benches = Array.of_list (R.all () @ R.extras ()) in
      let tiers = Array.of_list (tiers ()) in
      let arb =
        QCheck.make
          ~print:(fun (bi, ti, v) ->
            Printf.sprintf "%s/%s validate=%b" benches.(bi).R.b_name
              (Fi.tier_name tiers.(ti))
              v)
          QCheck.Gen.(
            triple
              (int_bound (Array.length benches - 1))
              (int_bound (Array.length tiers - 1))
              bool)
      in
      let prop (bi, ti, _validate) =
        let b = benches.(bi) in
        match
          Client.serve_work ~seed:0 socket (sweep_work ~tier:tiers.(ti) b.R.b_name)
        with
        | Client.Served payload ->
          String.equal payload (local_sweep_render b)
        | Client.Rejected _ | Client.Unreachable _ -> false
      in
      QCheck.Test.check_exn
        ~rand:(Random.State.make [| seed |])
        (QCheck.Test.make ~count:15
           ~name:"daemon sweep is byte-identical to Nimble.sweep" arb prop))

let suite =
  [ Alcotest.test_case "frame round-trips every tag" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "frames stream through a pipe" `Quick
      test_frame_stream;
    Alcotest.test_case "malformed frames get typed errors" `Quick
      test_typed_errors;
    Alcotest.test_case "requests round-trip; bad bodies are errors" `Quick
      test_request_roundtrip;
    Alcotest.test_case "backoff schedule is deterministic" `Quick
      test_backoff_schedule;
    Alcotest.test_case "dead address is Unreachable after retries" `Quick
      test_client_unreachable;
    Alcotest.test_case "hello/health/stats verbs" `Quick test_live_verbs;
    Alcotest.test_case "daemon estimate = in-process estimate" `Quick
      test_estimate_identity;
    Alcotest.test_case "unknown benchmark is Rejected, not a crash" `Quick
      test_unknown_benchmark_rejected;
    Alcotest.test_case "4 concurrent clients at jobs 1" `Quick
      (concurrent_clients 1);
    Alcotest.test_case "4 concurrent clients at jobs 4" `Quick
      (concurrent_clients 4);
    Alcotest.test_case "overload sheds BUSY with retry-after" `Quick
      test_shed_under_load;
    Alcotest.test_case "drain finishes in-flight work" `Quick
      test_drain_with_inflight;
    Alcotest.test_case "garbage costs one connection, not the daemon" `Quick
      test_protocol_error_contained;
    Alcotest.test_case "mid-request disconnect is contained" `Quick
      test_disconnect_contained;
    Alcotest.test_case "request budget times out with a typed ERR" `Quick
      test_request_budget;
    Alcotest.test_case "sweep identity: every benchmark, all tiers" `Slow
      test_sweep_identity_exhaustive;
    Alcotest.test_case "sweep identity: pinned-seed property" `Quick
      test_sweep_identity_property ]
