(* The surface-syntax parser: round-trips with the pretty-printer,
   precise error positions, and hand-written sources. *)

open Uas_ir
module S = Uas_bench_suite

let expr_testable = Alcotest.testable Pp.pp_expr Expr.equal

let test_expr_precedence () =
  List.iter
    (fun (src, expected) ->
      Alcotest.check expr_testable src expected (Parser.expr_of_string src))
    [ ("1 + 2 * 3", Builder.(int 1 + (int 2 * int 3)));
      ("(1 + 2) * 3", Builder.((int 1 + int 2) * int 3));
      ("a & 255 ^ b", Builder.(bxor (band (v "a") (int 255)) (v "b")));
      ("x << 2 + 1", Builder.(shl (v "x") (int 2 + int 1)));
      ("a < b == c < d", Builder.((v "a" < v "b") == (v "c" < v "d")));
      ("tab[i + 1]", Builder.(load "tab" (v "i" + int 1)));
      ("f(x & 63)", Builder.(rom "f" (band (v "x") (int 63))));
      ("(c ? a : b)", Builder.(select (v "c") (v "a") (v "b")));
      ("-5", Expr.Int (-5));
      ("~x + -2", Builder.(bnot (v "x") + int (-2)));
      ("1.5 +. x", Builder.(flt 1.5 +. v "x"));
      ("(float)n *. 0.25", Builder.(i2f (v "n") *. flt 0.25));
      ("(int)y", Builder.(f2i (v "y")));
      ("0xff & x", Builder.(band (int 255) (v "x"))) ]

let test_expr_roundtrip_qcheck =
  (* printed expressions reparse to the same tree (for trees without
     negative-literal/unary-minus ambiguity, which we avoid by
     generating non-negative constants) *)
  let rec gen depth st =
    let open QCheck.Gen in
    if depth = 0 then
      if bool st then Expr.Int (int_range 0 999 st)
      else Expr.Var [| "x"; "y"; "z" |].(int_range 0 2 st)
    else
      let sub () = gen (depth - 1) st in
      match int_range 0 8 st with
      | 0 -> Expr.Binop (Types.Add, sub (), sub ())
      | 1 -> Expr.Binop (Types.Sub, sub (), sub ())
      | 2 -> Expr.Binop (Types.Mul, sub (), sub ())
      | 3 -> Expr.Binop (Types.BAnd, sub (), sub ())
      | 4 -> Expr.Binop (Types.BXor, sub (), sub ())
      | 5 -> Expr.Binop (Types.Shl, sub (), sub ())
      | 6 -> Expr.Load ("mem", sub ())
      | 7 -> Expr.Select (sub (), sub (), sub ())
      | _ -> Expr.Binop (Types.Lt, sub (), sub ())
  in
  QCheck.Test.make ~name:"expression print/parse roundtrip" ~count:300
    (QCheck.make (gen 4) ~print:Pp.expr_to_string)
    (fun e -> Expr.equal e (Parser.expr_of_string (Pp.expr_to_string e)))

let program_equal (p : Stmt.program) (q : Stmt.program) =
  String.equal p.Stmt.prog_name q.Stmt.prog_name
  && p.Stmt.params = q.Stmt.params
  && p.Stmt.locals = q.Stmt.locals
  && p.Stmt.arrays = q.Stmt.arrays
  && List.length p.Stmt.roms = List.length q.Stmt.roms
  && List.for_all2
       (fun (a : Stmt.rom_decl) (b : Stmt.rom_decl) ->
         String.equal a.Stmt.r_name b.Stmt.r_name
         && a.Stmt.r_data = b.Stmt.r_data)
       p.Stmt.roms q.Stmt.roms
  && Stmt.equal_list p.Stmt.body q.Stmt.body

let test_program_roundtrips () =
  let programs =
    [ S.Simple.fg_loop ~m:8 ~n:4;
      S.Simple.ch4_loop ~m:4 ~n:3;
      S.Simple.checksum_loop ~m:4 ~n:6;
      S.Skipjack.skipjack_mem ~m:4;
      S.Skipjack.skipjack_hw ~m:4 ~key:(S.Skipjack.random_key ~seed:3);
      S.Des.des_mem ~m:2;
      S.Des.des_hw ~m:2 ~key64:0x0123456789ABCDEFL ]
  in
  List.iter
    (fun (p : Stmt.program) ->
      let text = Pp.program_to_string p in
      let q = Parser.program_of_string text in
      if not (program_equal p q) then
        Alcotest.failf "%s does not round-trip:@\n%s" p.Stmt.prog_name text)
    programs

(* The canonical-text fixpoint behind the artifact-store keys: for
   every registry benchmark, printing, re-parsing and printing again
   yields the same bytes — so `Pp.program_to_string` is a stable
   identity for cache keying (a program and its parsed round-trip can
   never hash to different keys). *)
let test_registry_canonical_text_fixpoint () =
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let text = Pp.program_to_string b.S.Registry.b_program in
      let reparsed =
        try Parser.program_of_string text
        with Parser.Parse_error e ->
          Alcotest.failf "%s: canonical text does not parse (%d:%d: %s)"
            b.S.Registry.b_name e.line e.col e.msg
      in
      Alcotest.(check string)
        (b.S.Registry.b_name ^ ": canonical text is a fixpoint")
        text
        (Pp.program_to_string reparsed))
    (S.Registry.all () @ S.Registry.extras ())

let test_transformed_roundtrips () =
  (* squashed output (with its generated '@' names) also round-trips *)
  let p = S.Simple.fg_loop ~m:8 ~n:4 in
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let out = Uas_transform.Squash.apply p nest ~ds:4 in
  let text = Pp.program_to_string out.Uas_transform.Squash.program in
  let q = Parser.program_of_string text in
  Alcotest.(check bool) "squashed roundtrip" true
    (program_equal out.Uas_transform.Squash.program q)

let test_hand_written_source () =
  let src =
    {|
// a hand-written kernel with every syntactic form
program demo {
  param int k;
  in int data[8];
  out int result[8];
  local float scratch[4];
  rom f = { 1, 2, 3, 250 };
  int i; int j; int a;
  float y;
  for (i = 0; i < 8; i += 2) {
    a = data[i];
    /* rounds */
    for (j = 0; j < 4; j++) {
      a = f(a & 3) + (a << 1);
      if (a > k) { a = a - k; } else { a = a + 1; }
      a = (a == 7 ? 0 : a);
    }
    y = (float)a *. 0.5;
    scratch[i & 3] = y;
    result[i] = (int)y;
  }
}
|}
  in
  let p = Parser.program_of_string src in
  (match Validate.errors p with
  | [] -> ()
  | errs -> Alcotest.failf "invalid: %a" (Fmt.list Validate.pp_error) errs);
  (* and it executes *)
  let w =
    Interp.workload
      ~scalars:[ ("k", Types.VInt 5) ]
      ~arrays:
        [ ("data", Array.init 8 (fun t -> Types.VInt (t * 11))) ]
      ()
  in
  let r = Interp.run p w in
  Alcotest.(check int) "outputs present" 8
    (Array.length (List.assoc "result" r.Interp.outputs))

let test_error_positions () =
  List.iter
    (fun (src, expect_line) ->
      match Parser.program_of_string src with
      | exception Parser.Parse_error e ->
        Alcotest.(check int) ("line of " ^ String.escaped src) expect_line
          e.line
      | _ -> Alcotest.failf "expected a parse error in %s" src)
    [ ("program p {\n  int x\n}", 3);  (* missing semicolon *)
      ("program p {\n  x = ;\n}", 2);
      ("program p {\n  for (i = 0; j < 4; i++) { }\n}", 2);
      ("program p {\n  int x;\n  x = 1 $ 2;\n}", 3) ]

let test_comments_and_hex () =
  let p =
    Parser.program_of_string
      "program c { int x; /* multi\nline */ x = 0xFF; // tail\n }"
  in
  match p.Stmt.body with
  | [ Stmt.Assign ("x", Expr.Int 255) ] -> ()
  | _ -> Alcotest.fail "unexpected parse"

let suite =
  [ Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    QCheck_alcotest.to_alcotest test_expr_roundtrip_qcheck;
    Alcotest.test_case "program roundtrips" `Quick test_program_roundtrips;
    Alcotest.test_case "registry canonical-text fixpoint" `Quick
      test_registry_canonical_text_fixpoint;
    Alcotest.test_case "transformed roundtrips" `Quick
      test_transformed_roundtrips;
    Alcotest.test_case "hand-written source" `Quick test_hand_written_source;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "comments and hex" `Quick test_comments_and_hex ]
