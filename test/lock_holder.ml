(* Helper for test_store's multi-process locking tests: takes the
   fcntl lock on argv.(1), signals readiness on stdout, and holds the
   lock until stdin reaches EOF.  A real child process is required
   because fcntl locks are per-process and [Unix.fork] is unavailable
   once other suites have spawned domains. *)
let () =
  let fd = Unix.openfile Sys.argv.(1) [ Unix.O_RDWR ] 0o644 in
  Unix.lockf fd Unix.F_LOCK 0;
  print_string "locked\n";
  flush stdout;
  (try ignore (input_line stdin) with End_of_file -> ());
  exit 0
