(* Shared fixtures and assertions for the test suites. *)

open Uas_ir
module B = Builder

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- reference programs --- *)

(* Figure 2.1: the f/g nested loop.  f and g are modeled as 1-cycle
   ALU operations (f = add-and-mask, g = double-and-xor), preserving
   the inter-iteration recurrence that blocks inner pipelining. *)
let fg_loop ~m ~n : Stmt.program =
  B.program "fg_loop"
    ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
              ("b", Types.Tint) ]
    ~arrays:[ B.input "data_in" m; B.output "data_out" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("a" <-- load "data_in" (v "i"));
          B.for_ "j" ~hi:(B.int n)
            [ B.("b" <-- band (v "a" + int 3) (int 255));
              B.("a" <-- bxor (v "b" + v "b") (int 21)) ];
          B.store "data_out" (B.v "i") (B.v "a") ]
    ]

(* Figure 4.1: the example used for the DFG/stage illustrations; uses
   both loop indices and a loop-invariant scalar k. *)
let ch4_loop ~m ~n : Stmt.program =
  B.program "ch4_loop"
    ~params:[ ("k", Types.Tint) ]
    ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
              ("b", Types.Tint); ("c", Types.Tint) ]
    ~arrays:[ B.input "src" m; B.output "dst" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("a" <-- load "src" (v "i"));
          B.for_ "j" ~hi:(B.int n)
            [ B.("b" <-- v "a" + v "i");
              B.("c" <-- v "b" - v "j");
              B.("a" <-- band (v "c") (int 15) * v "k") ];
          B.store "dst" (B.v "i") (B.v "a") ]
    ]

(* A nest with memory accesses in the inner body (stream transform with
   a per-block table), exercising memory legality and ResMII. *)
let memory_loop ~m ~n : Stmt.program =
  B.program "memory_loop"
    ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("acc", Types.Tint);
              ("t", Types.Tint) ]
    ~arrays:[ B.input "src" (m * n); B.input "tab" 256; B.output "dst" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("acc" <-- int 0);
          B.for_ "j" ~hi:(B.int n)
            [ B.("t" <-- load "src" ((v "i" * int n) + v "j"));
              B.("acc" <-- v "acc" + load "tab" (band (bxor (v "t") (v "acc")) (int 255))) ];
          B.store "dst" (B.v "i") (B.v "acc") ]
    ]

(* --- workloads --- *)

let int_array rng len bound =
  Array.init len (fun _ -> Types.VInt (Random.State.int rng bound))

let float_array rng len =
  Array.init len (fun _ ->
      Types.VFloat (Random.State.float rng 2.0 -. 1.0))

(** A random workload for [p]: random contents for every input array,
    random small ints / unit floats for params. *)
let random_workload ?(seed = 42) (p : Stmt.program) : Interp.workload =
  let rng = Random.State.make [| seed |] in
  let arrays =
    List.filter_map
      (fun (d : Stmt.array_decl) ->
        match d.a_kind with
        | Stmt.Input ->
          Some
            ( d.a_name,
              match d.a_ty with
              | Types.Tint -> int_array rng d.a_size 1024
              | Types.Tfloat -> float_array rng d.a_size )
        | Stmt.Output | Stmt.Local -> None)
      p.arrays
  in
  let scalars =
    List.map
      (fun (v, ty) ->
        ( v,
          match ty with
          | Types.Tint -> Types.VInt (1 + Random.State.int rng 7)
          | Types.Tfloat -> Types.VFloat (Random.State.float rng 1.0) ))
      p.params
  in
  Interp.workload ~scalars ~arrays ()

(* --- assertions --- *)

(** Check that [q] computes the same outputs as [p] on several random
    workloads, and that [q] is well-formed. *)
let assert_equivalent ?(seeds = [ 1; 2; 3 ]) ~msg (p : Stmt.program)
    (q : Stmt.program) : unit =
  (match Validate.errors q with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: transformed program invalid:@\n%a@\n%a" msg
      (Fmt.list Validate.pp_error) errs Pp.pp_program q);
  List.iter
    (fun seed ->
      let w = random_workload ~seed p in
      let r1 = Interp.run p w in
      let r2 = Interp.run q w in
      match Interp.diff_outputs r1 r2 with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s (seed %d): %s@\ntransformed:@\n%a" msg seed d
          Pp.pp_program q)
    seeds

let nest_of (p : Stmt.program) outer_index =
  Uas_analysis.Loop_nest.find_by_outer_index p outer_index

(** qcheck arbitrary for small (m, n) loop sizes. *)
let gen_sizes ~m_max ~n_max =
  QCheck.(pair (int_range 1 m_max) (int_range 1 n_max))

(* --- random legal nests for property tests ---

   Generates programs of the squashable shape by construction: the
   outer loop walks independent blocks (read-only inputs, the output
   written at the block index), the inner body is random straight-line
   integer code that only reads variables already defined (or the
   pre-loaded live-ins and the loop indices). *)

(* Random straight-line integer statements over the scalars a..d:
   each assigns one scalar an expression reading only the loop indices,
   already-[defined] scalars, masked "tab" lookups and constants. *)
let gen_straightline ~defined ~n_stmts st =
  let open QCheck.Gen in
  let vars = [| "a"; "b"; "c"; "d" |] in
  let rec gen_expr depth st =
    let leaf () =
      match int_range 0 4 st with
      | 0 -> B.int (int_range (-20) 100 st)
      | 1 -> B.v "i"
      | 2 -> B.v "j"
      | _ ->
        let candidates = !defined in
        B.v (List.nth candidates (int_range 0 (List.length candidates - 1) st))
    in
    if depth = 0 then leaf ()
    else begin
      let d = depth - 1 in
      let sub () = gen_expr d st in
      match int_range 0 7 st with
      | 0 -> B.(sub () + sub ())
      | 1 -> B.(sub () - sub ())
      | 2 -> B.(band (sub ()) (int (int_range 1 4095 st)))
      | 3 -> B.(bxor (sub ()) (sub ()))
      | 4 -> B.(sub () * int (int_range 0 9 st))
      | 5 -> B.(shr (sub ()) (int (int_range 0 6 st)))
      | 6 -> B.select B.(sub () < sub ()) (sub ()) (sub ())
      | _ ->
        (* read-only table lookup with a masked index *)
        B.load "tab" (B.band (sub ()) (B.int 63))
    end
  in
  List.init n_stmts (fun _ ->
      let dst = vars.(int_range 0 3 st) in
      let e = gen_expr (int_range 1 3 st) st in
      if not (List.mem dst !defined) then defined := dst :: !defined;
      B.(dst <-- e))

let gen_nest_program_sized ~m_max ~n_max : Stmt.program QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let m = int_range 1 m_max st in
  let n = int_range 1 n_max st in
  (* a and b are pre-loaded; c, d must be defined before use *)
  let defined = ref [ "a"; "b" ] in
  let body = gen_straightline ~defined ~n_stmts:(int_range 1 6 st) st in
  B.program "gen_nest"
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
        ("b", Types.Tint); ("c", Types.Tint); ("d", Types.Tint) ]
    ~arrays:[ B.input "src" m; B.input "tab" 64; B.output "dst" m ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.("a" <-- load "src" (v "i"));
          B.("b" <-- bxor (v "a") (int 5));
          B.for_ "j" ~hi:(B.int n) body;
          B.store "dst" (B.v "i") (B.v "a") ]
    ]

let gen_nest_program = gen_nest_program_sized ~m_max:10 ~n_max:6

let arbitrary_nest_program =
  QCheck.make gen_nest_program ~print:Pp.program_to_string

(* Differential-testing variant: inner trip counts up to 12 so
   squash(4) and jam(2) transform a multi-slice steady state (not just
   the peel/epilogue), outer counts kept small so interpreter replay of
   every version stays cheap. *)
let gen_diff_nest_program = gen_nest_program_sized ~m_max:6 ~n_max:12

let arbitrary_diff_nest_program =
  QCheck.make gen_diff_nest_program ~print:Pp.program_to_string

(* Perfect-nest variant for the nest rewrites (interchange, flatten,
   tiling): the whole body lives in the inner loop, every scalar read
   is preceded by a definition there, all loads are read-only, and each
   (i, j) iteration writes its own dst cell — so the loops are legally
   reorderable by construction. *)
let gen_perfect_nest_program_sized ~m_max ~n_max : Stmt.program QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let m = int_range 1 m_max st in
  let n = int_range 1 n_max st in
  let defined = ref [ "a"; "b" ] in
  let stmts = gen_straightline ~defined ~n_stmts:(int_range 1 5 st) st in
  B.program "gen_perfect"
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("a", Types.Tint);
        ("b", Types.Tint); ("c", Types.Tint); ("d", Types.Tint) ]
    ~arrays:[ B.input "src" (m * n); B.input "tab" 64; B.output "dst" (m * n) ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.for_ "j" ~hi:(B.int n)
            ([ B.("a" <-- load "src" ((v "i" * int n) + v "j"));
               B.("b" <-- bxor (v "a") (int 5)) ]
            @ stmts
            @ [ B.store "dst" B.((v "i" * int n) + v "j") (B.v "a") ]) ]
    ]

let gen_perfect_nest_program = gen_perfect_nest_program_sized ~m_max:5 ~n_max:5

let arbitrary_perfect_nest_program =
  QCheck.make gen_perfect_nest_program ~print:Pp.program_to_string

(* 3-deep variant for the depth-general paths: the outer (i, j) pair
   walks independent cells through the row pointer p (a genuine
   cross-iteration induction variable, so flatten + induction analysis
   keeps the accesses affine), the innermost k loop is random
   straight-line code.  About a third of the programs get an i-level
   band, making the (i, j) pair imperfect — flatten must then reject
   it cleanly rather than transform it. *)
let gen_nest3_program_sized ~m_max ~n_max ~k_max : Stmt.program QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let m = int_range 1 m_max st in
  let n = int_range 1 n_max st in
  let k = int_range 1 k_max st in
  let defined = ref [ "a"; "b" ] in
  let body = gen_straightline ~defined ~n_stmts:(int_range 1 5 st) st in
  let i_band =
    if int_range 0 2 st = 0 then [ B.("c" <-- v "i" * B.int n) ] else []
  in
  B.program "gen_nest3"
    ~locals:
      [ ("i", Types.Tint); ("j", Types.Tint); ("k", Types.Tint);
        ("p", Types.Tint); ("a", Types.Tint); ("b", Types.Tint);
        ("c", Types.Tint); ("d", Types.Tint) ]
    ~arrays:
      [ B.input "src" (m * n); B.input "tab" 64; B.output "dst" (m * n) ]
    [ B.("p" <-- int 0);
      B.for_ "i" ~hi:(B.int m)
        (i_band
        @ [ B.for_ "j" ~hi:(B.int n)
              [ B.("a" <-- load "src" (v "p"));
                B.("b" <-- bxor (v "a") (int 5));
                B.for_ "k" ~hi:(B.int k) body;
                B.store "dst" (B.v "p") (B.v "a");
                B.("p" <-- v "p" + int 1) ]
          ])
    ]

let gen_nest3_program = gen_nest3_program_sized ~m_max:4 ~n_max:4 ~k_max:6

let arbitrary_nest3_program =
  QCheck.make gen_nest3_program ~print:Pp.program_to_string
