(* Correctness of unroll-and-squash: transformed programs must compute
   bit-identical outputs, keep the operator count of the original body,
   and have the structure §4.3/§4.4 promises. *)

open Uas_ir
module Squash = Uas_transform.Squash
module Loop_nest = Uas_analysis.Loop_nest

let squash_fg ~m ~n ~ds =
  let p = Helpers.fg_loop ~m ~n in
  let nest = Helpers.nest_of p "i" in
  (p, Squash.apply p nest ~ds)

let test_fg_equivalence () =
  List.iter
    (fun (m, n, ds) ->
      let p, out = squash_fg ~m ~n ~ds in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "fg m=%d n=%d ds=%d" m n ds)
        p out.Squash.program)
    [ (4, 3, 2); (8, 5, 4); (8, 1, 2); (6, 2, 3); (16, 4, 8); (2, 7, 2);
      (4, 4, 1); (16, 3, 16) ]

let test_fg_peeling () =
  (* trip counts that do not divide DS force peeling *)
  List.iter
    (fun (m, n, ds) ->
      let p, out = squash_fg ~m ~n ~ds in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "fg peel m=%d n=%d ds=%d" m n ds)
        p out.Squash.program)
    [ (5, 3, 2); (7, 2, 4); (9, 4, 8); (3, 5, 2) ]

let test_ch4_equivalence () =
  List.iter
    (fun (m, n, ds) ->
      let p = Helpers.ch4_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      let out = Uas_transform.Squash.apply p nest ~ds in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "ch4 m=%d n=%d ds=%d" m n ds)
        p out.Squash.program)
    [ (4, 3, 2); (8, 5, 4); (6, 6, 3); (8, 2, 2) ]

let test_memory_equivalence () =
  List.iter
    (fun (m, n, ds) ->
      let p = Helpers.memory_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      let out = Uas_transform.Squash.apply p nest ~ds in
      Helpers.assert_equivalent
        ~msg:(Printf.sprintf "memory m=%d n=%d ds=%d" m n ds)
        p out.Squash.program)
    [ (4, 3, 2); (8, 4, 4); (6, 2, 2) ]

let test_operator_count_preserved () =
  (* §4.4: squash adds only registers; operators are not duplicated *)
  List.iter
    (fun ds ->
      let p = Helpers.fg_loop ~m:16 ~n:4 in
      let nest = Helpers.nest_of p "i" in
      let before = Stmt.operator_count nest.Loop_nest.inner_body in
      let out = Squash.apply p nest ~ds in
      let after =
        Stmt.operator_count out.Squash.new_inner_body
      in
      Alcotest.(check int)
        (Printf.sprintf "operator count at ds=%d" ds)
        before after)
    [ 1; 2; 4; 8 ]

let test_steady_trip_count () =
  (* §4.4: the inner iteration count becomes DS*N - (DS-1) *)
  List.iter
    (fun (n, ds) ->
      let p = Helpers.fg_loop ~m:(2 * ds) ~n in
      let nest = Helpers.nest_of p "i" in
      let out = Squash.apply p nest ~ds in
      let steady =
        match Loop_nest.find_by_outer_index_opt out.Squash.program "i" with
        | Some nst
          when String.equal nst.Loop_nest.inner_index
                 out.Squash.new_inner_index ->
          Loop_nest.inner_trip_count nst
        | _ -> None
      in
      Alcotest.(check (option int))
        (Printf.sprintf "steady trips n=%d ds=%d" n ds)
        (Some ((ds * n) - (ds - 1)))
        steady)
    [ (4, 2); (4, 4); (7, 3); (1, 2) ]

let test_stage_count () =
  let p = Helpers.fg_loop ~m:8 ~n:4 in
  let nest = Helpers.nest_of p "i" in
  let out = Squash.apply p nest ~ds:4 in
  Alcotest.(check int) "stage count" 4 (List.length out.Squash.stages);
  Alcotest.(check (list string)) "rotated scalars" [ "a"; "b" ]
    (List.sort String.compare out.Squash.rotated)

let test_squashed_schedules_valid () =
  (* the squashed inner body must still yield schedules that pass the
     shared validity checker, at every factor *)
  let module D = Uas_dfg in
  List.iter
    (fun ds ->
      List.iter
        (fun (name, p) ->
          let nest = Helpers.nest_of p "i" in
          let out = Squash.apply p nest ~ds in
          let g, _ =
            D.Build.build ~inner_index:out.Squash.new_inner_index
              out.Squash.new_inner_body
          in
          List.iter
            (fun (backend, s) ->
              match D.Sched.check_schedule g s with
              | Ok () -> ()
              | Error msgs ->
                Alcotest.failf "%s ds=%d %s: %s" name ds backend
                  (String.concat "; " msgs))
            [ ("list", D.Sched.list_schedule g);
              ("modulo", D.Sched.modulo_schedule g) ])
        [ ("fg", Helpers.fg_loop ~m:16 ~n:4);
          ("memory", Helpers.memory_loop ~m:16 ~n:4) ])
    [ 1; 2; 4; 8 ]

let test_rejects_outer_carried () =
  (* an accumulating outer loop is not parallel: must be rejected *)
  let open Builder in
  let p =
    program "acc"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("s", Types.Tint) ]
      ~arrays:[ input "a" 8; output "o" 8 ]
      [ ("s" <-- int 0);
        for_ "i" ~hi:(int 8)
          [ for_ "j" ~hi:(int 4) [ "s" <-- v "s" + load "a" (v "i") ];
            store "o" (v "i") (v "s") ] ]
  in
  let nest = Helpers.nest_of p "i" in
  match Squash.apply p nest ~ds:2 with
  | exception Squash.Squash_error (Squash.Illegal _) -> ()
  | _ -> Alcotest.fail "expected Illegal"

let test_rejects_overlapping_arrays () =
  (* out[i+1] read as in[i] of the next iteration: distance 1 hazard *)
  let open Builder in
  let p =
    program "overlap"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("x", Types.Tint) ]
      ~arrays:[ input "a" 18; output "o" 18 ]
      [ for_ "i" ~lo:(int 1) ~hi:(int 17)
          [ ("x" <-- load "a" (v "i" - int 1));
            for_ "j" ~hi:(int 3) [ "x" <-- v "x" + int 1 ];
            store "a" (v "i") (v "x");
            store "o" (v "i") (v "x") ] ]
  in
  let nest = Helpers.nest_of p "i" in
  match Squash.apply p nest ~ds:2 with
  | exception Squash.Squash_error (Squash.Illegal _) -> ()
  | _ -> Alcotest.fail "expected Illegal (array distance 1)"

let test_qcheck_equivalence =
  QCheck.Test.make ~name:"squash fg equivalence (random sizes/factors)"
    ~count:60
    QCheck.(triple (int_range 1 12) (int_range 1 8) (int_range 1 6))
    (fun (m, n, ds) ->
      let p = Helpers.fg_loop ~m ~n in
      let nest = Helpers.nest_of p "i" in
      match Squash.apply p nest ~ds with
      | out ->
        let w = Helpers.random_workload ~seed:(m + (13 * n) + (101 * ds)) p in
        let r1 = Interp.run p w in
        let r2 = Interp.run out.Squash.program w in
        Interp.outputs_equal r1 r2
      | exception Squash.Squash_error Squash.Inner_loop_empty -> n = 0)

let test_qcheck_random_nests =
  (* structurally random (but legal-by-construction) nests: squash at a
     random factor must preserve outputs exactly *)
  QCheck.Test.make ~name:"squash equivalence (random nests)" ~count:80
    QCheck.(pair Helpers.arbitrary_nest_program (int_range 1 5))
    (fun (p, ds) ->
      let nest = Helpers.nest_of p "i" in
      match Squash.apply p nest ~ds with
      | out ->
        Uas_ir.Validate.is_valid out.Squash.program
        &&
        let w = Helpers.random_workload ~seed:ds p in
        Interp.outputs_equal (Interp.run p w)
          (Interp.run out.Squash.program w)
      | exception Squash.Squash_error (Squash.Illegal _) ->
        (* the generator can produce bodies whose table index is not
           provably in-bounds affine; legality may then reject — that
           is allowed, silently skipping the case *)
        true)

let test_qcheck_random_nests_jam =
  QCheck.Test.make ~name:"jam equivalence (random nests)" ~count:80
    QCheck.(pair Helpers.arbitrary_nest_program (int_range 1 5))
    (fun (p, ds) ->
      let nest = Helpers.nest_of p "i" in
      match Uas_transform.Unroll_and_jam.apply p nest ~ds with
      | out ->
        let w = Helpers.random_workload ~seed:(ds + 7) p in
        Interp.outputs_equal (Interp.run p w)
          (Interp.run out.Uas_transform.Unroll_and_jam.program w)
      | exception Uas_transform.Unroll_and_jam.Jam_error _ -> true)

let suite =
  [ Alcotest.test_case "fg equivalence" `Quick test_fg_equivalence;
    Alcotest.test_case "fg peeling" `Quick test_fg_peeling;
    Alcotest.test_case "ch4 equivalence" `Quick test_ch4_equivalence;
    Alcotest.test_case "memory equivalence" `Quick test_memory_equivalence;
    Alcotest.test_case "operator count preserved" `Quick
      test_operator_count_preserved;
    Alcotest.test_case "steady trip count" `Quick test_steady_trip_count;
    Alcotest.test_case "stage count" `Quick test_stage_count;
    Alcotest.test_case "squashed schedules valid" `Quick
      test_squashed_schedules_valid;
    Alcotest.test_case "rejects outer-carried scalar" `Quick
      test_rejects_outer_carried;
    Alcotest.test_case "rejects overlapping arrays" `Quick
      test_rejects_overlapping_arrays;
    QCheck_alcotest.to_alcotest test_qcheck_equivalence;
    QCheck_alcotest.to_alcotest test_qcheck_random_nests;
    QCheck_alcotest.to_alcotest test_qcheck_random_nests_jam ]
