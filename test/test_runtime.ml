(* The runtime subsystem: the Domain pool (ordering, exception
   propagation, UAS_JOBS), the pass instrumentation registry (spans,
   counters, thread safety, JSON), and the bench-harness CLI parser. *)

module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Fault = Uas_runtime.Fault
module Cli = Uas_core.Cli

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- Parallel --- *)

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Parallel.map ~jobs f xs))
    [ 1; 2; 4; 8; 101 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map ~jobs:4 succ [ 1 ])

let test_map_preserves_order_under_skew () =
  (* earlier items do more work than later ones, so a pool that
     collected results in completion order would reverse them *)
  let xs = List.init 32 Fun.id in
  let f x =
    let spin = (32 - x) * 10_000 in
    let acc = ref x in
    for _ = 1 to spin do
      acc := !acc lxor ((!acc * 31) + 7)
    done;
    ignore !acc;
    x
  in
  Alcotest.(check (list int)) "input order" xs (Parallel.map ~jobs:4 f xs)

exception Boom of int

let test_map_reraises_first_input_failure () =
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
        Alcotest.(check int)
          (Printf.sprintf "first input-order failure (jobs=%d)" jobs)
          3 n)
    [ 1; 4 ]

let test_map_failure_still_completes_rest () =
  (* a failing task never cancels its siblings: the pool drains *)
  let completed = Atomic.make 0 in
  let f x =
    if x = 0 then failwith "first"
    else begin
      Atomic.incr completed;
      x
    end
  in
  (match Parallel.map ~jobs:4 f (List.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected the failure to re-raise"
  | exception Failure m -> Alcotest.(check string) "earliest failure" "first" m);
  Alcotest.(check int) "remaining tasks completed" 7 (Atomic.get completed)

let test_map_reduce () =
  let total =
    Parallel.map_reduce ~jobs:4 ~map:Fun.id ~reduce:( + ) ~init:0
      (List.init 100 succ)
  in
  Alcotest.(check int) "sum 1..100" 5050 total;
  (* non-commutative reduce still folds in input order *)
  let concat =
    Parallel.map_reduce ~jobs:4 ~map:string_of_int ~reduce:( ^ ) ~init:""
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check string) "ordered fold" "12345" concat

let test_default_jobs_env () =
  Unix.putenv Parallel.jobs_env_var "3";
  Alcotest.(check int) "UAS_JOBS=3" 3 (Parallel.default_jobs ());
  Unix.putenv Parallel.jobs_env_var "not-a-number";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "malformed UAS_JOBS accepted"
  | exception Invalid_argument _ -> ());
  Unix.putenv Parallel.jobs_env_var "0";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "UAS_JOBS=0 accepted"
  | exception Invalid_argument _ -> ());
  (* leave a sane value behind for any later default-jobs caller *)
  Unix.putenv Parallel.jobs_env_var "2"

let test_default_jobs_result () =
  Unix.putenv Parallel.jobs_env_var "3";
  (match Parallel.default_jobs_result () with
  | Ok n -> Alcotest.(check int) "UAS_JOBS=3" 3 n
  | Error m -> Alcotest.failf "unexpected error %s" m);
  Unix.putenv Parallel.jobs_env_var "zero";
  (match Parallel.default_jobs_result () with
  | Ok _ -> Alcotest.fail "malformed UAS_JOBS accepted"
  | Error m ->
    Alcotest.(check bool) "message names the value" true
      (contains ~affix:"zero" m));
  Unix.putenv Parallel.jobs_env_var "2"

(* --- the supervised pool --- *)

let arm_or_fail plan =
  match Fault.arm plan with
  | Ok () -> ()
  | Error m -> Alcotest.failf "bad fault plan %S: %s" plan m

let test_map_results_per_cell () =
  let f x = if x = 3 then raise (Boom x) else x * 2 in
  List.iter
    (fun jobs ->
      let rs = Parallel.map_results ~jobs f (List.init 6 Fun.id) in
      Alcotest.(check int) "one result per input" 6 (List.length rs);
      List.iteri
        (fun i r ->
          match r with
          | Ok y ->
            (* the failure stayed in its own cell: every other task
               still completed *)
            Alcotest.(check bool)
              (Printf.sprintf "input %d succeeded (jobs=%d)" i jobs)
              true (i <> 3);
            Alcotest.(check int) "value" (i * 2) y
          | Error (Parallel.Task_failure.Raised { exn = Boom n; attempts; _ })
            ->
            Alcotest.(check int) "the failing input" 3 i;
            Alcotest.(check int) "its payload" 3 n;
            Alcotest.(check int) "single attempt without retries" 1 attempts
          | Error tf ->
            Alcotest.failf "unexpected failure: %s"
              (Parallel.Task_failure.to_message tf))
        rs)
    [ 1; 4 ]

(* A stalled task is marked Timed_out by the watchdog and its slot
   resolved, so the pool drains — at any size, including a single
   worker. *)
let test_map_results_timeout_drains () =
  Fault.clear ();
  Fault.set_stall_cap 10.0 (* far past the budget: the watchdog must act *);
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Fault.set_stall_cap 1.0)
    (fun () ->
      List.iter
        (fun jobs ->
          arm_or_fail "parallel.task=2:stall:1";
          let rs =
            Parallel.map_results ~jobs ~timeout_s:0.1 succ (List.init 5 Fun.id)
          in
          Fault.clear ();
          List.iteri
            (fun i r ->
              match r with
              | Ok y ->
                Alcotest.(check bool)
                  (Printf.sprintf "only input 2 times out (jobs=%d)" jobs)
                  true (i <> 2);
                Alcotest.(check int) "value" (i + 1) y
              | Error (Parallel.Task_failure.Timed_out { budget_s; _ }) ->
                Alcotest.(check int) "the stalled input" 2 i;
                Alcotest.(check (float 1e-9)) "budget recorded" 0.1 budget_s
              | Error tf ->
                Alcotest.failf "unexpected failure: %s"
                  (Parallel.Task_failure.to_message tf))
            rs)
        [ 1; 4 ])

(* An injected fault is retryable: with a retry budget the task
   succeeds on its second attempt (the spec fires exactly once) and the
   retry is counted. *)
let test_map_results_retries_injected () =
  Fault.clear ();
  Instrument.set_enabled true;
  Instrument.reset ();
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Instrument.reset ();
      Instrument.set_enabled false)
    (fun () ->
      arm_or_fail "parallel.task=1:raise:1";
      let rs =
        Parallel.map_results ~jobs:2 ~retries:1 ~retry_backoff_s:0.001 succ
          (List.init 4 Fun.id)
      in
      List.iteri
        (fun i r ->
          match r with
          | Ok y -> Alcotest.(check int) "value" (i + 1) y
          | Error tf ->
            Alcotest.failf "input %d not retried: %s" i
              (Parallel.Task_failure.to_message tf))
        rs;
      match List.assoc_opt "pool.retries" (Instrument.counters ()) with
      | Some n -> Alcotest.(check int) "one retry recorded" 1 n
      | None -> Alcotest.fail "pool.retries not counted")

(* Without a retry budget the injected fault surfaces as that cell's
   Raised failure, attempts = 1. *)
let test_map_results_injected_not_retried () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear (fun () ->
      arm_or_fail "parallel.task=1:raise:1";
      let rs = Parallel.map_results ~jobs:2 succ (List.init 4 Fun.id) in
      match List.nth rs 1 with
      | Error (Parallel.Task_failure.Raised { exn; attempts; _ }) ->
        Alcotest.(check bool) "injected" true (Fault.is_injected exn);
        Alcotest.(check int) "no retries" 1 attempts
      | Ok _ -> Alcotest.fail "expected the injected failure"
      | Error tf ->
        Alcotest.failf "unexpected failure: %s"
          (Parallel.Task_failure.to_message tf))

(* --- the fault registry --- *)

let test_fault_grammar () =
  Fault.clear ();
  List.iter
    (fun bad ->
      match Fault.arm bad with
      | Ok () -> Alcotest.failf "accepted malformed plan %S" bad
      | Error _ -> ())
    [ ""; "nonsense"; "pass.run:raise"; "pass.run:explode:1";
      "pass.run:raise:0"; "pass.run:raise:x"; ":raise:1" ];
  Alcotest.(check bool) "nothing armed after failures" false (Fault.active ());
  arm_or_fail "pass.run:raise:2,rewrite.apply:corrupt:1";
  Alcotest.(check bool) "armed" true (Fault.active ());
  Alcotest.(check (option string))
    "plan echoed" (Some "pass.run:raise:2,rewrite.apply:corrupt:1")
    (Fault.plan ());
  Fault.clear ();
  Alcotest.(check bool) "cleared" false (Fault.active ());
  Alcotest.(check (option string)) "no plan" None (Fault.plan ())

let test_fault_nth_counting () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear (fun () ->
      arm_or_fail "pass.run:raise:2";
      Alcotest.(check bool) "1st hit clean" true (Fault.hit "pass.run" = None);
      (match Fault.hit "pass.run" with
      | Some Fault.Raise -> ()
      | _ -> Alcotest.fail "2nd hit must fire");
      Alcotest.(check bool) "3rd hit clean (fires exactly once)" true
        (Fault.hit "pass.run" = None);
      Alcotest.(check bool) "other site never matches" true
        (Fault.hit "rewrite.apply" = None))

let test_fault_label_and_scope () =
  Fault.clear ();
  Fun.protect ~finally:Fault.clear (fun () ->
      arm_or_fail "rewrite.apply=squash:raise:1";
      Alcotest.(check bool) "other label no match" true
        (Fault.hit ~label:"jam" "rewrite.apply" = None);
      Alcotest.(check bool) "unlabelled hit no match" true
        (Fault.hit "rewrite.apply" = None);
      (* a scope frame carries the label to unlabelled hits inside it,
         which is how a spec lands on one (benchmark, version) cell *)
      (match
         Fault.with_scope "squash" (fun () -> Fault.hit "rewrite.apply")
       with
      | Some Fault.Raise -> ()
      | _ -> Alcotest.fail "scope label must match");
      Alcotest.(check (list string)) "scope popped" [] (Fault.scopes ()))

(* --- Instrument --- *)

let test_instrument_disabled_is_noop () =
  Instrument.set_enabled false;
  Instrument.reset ();
  Alcotest.(check int) "span runs the thunk" 42
    (Instrument.span "noop" (fun () -> 42));
  Instrument.incr "noop-counter";
  Alcotest.(check bool) "nothing recorded" true
    (Instrument.spans () = [] && Instrument.counters () = [])

let test_instrument_records () =
  Instrument.set_enabled true;
  Instrument.reset ();
  for _ = 1 to 5 do
    ignore (Instrument.span "pass-a" (fun () -> Sys.opaque_identity 1))
  done;
  Instrument.incr "cells";
  Instrument.incr ~by:4 "cells";
  (match List.assoc_opt "pass-a" (Instrument.spans ()) with
  | None -> Alcotest.fail "span pass-a missing"
  | Some s ->
    Alcotest.(check int) "calls" 5 s.Instrument.calls;
    Alcotest.(check bool) "total >= max" true
      (s.Instrument.total_s >= s.Instrument.max_s));
  Alcotest.(check (list (pair string int)))
    "counter" [ ("cells", 5) ] (Instrument.counters ());
  (* spans record through exceptions too *)
  (try Instrument.span "pass-b" (fun () -> failwith "x") with Failure _ -> ());
  (match List.assoc_opt "pass-b" (Instrument.spans ()) with
  | Some s -> Alcotest.(check int) "exceptional call counted" 1 s.Instrument.calls
  | None -> Alcotest.fail "span pass-b missing");
  let json = Instrument.to_json () in
  Alcotest.(check bool) "json mentions spans and counters" true
    (contains ~affix:"\"pass-a\"" json
    && contains ~affix:"\"cells\":5" json);
  Instrument.reset ();
  Instrument.set_enabled false

let test_instrument_thread_safe () =
  Instrument.set_enabled true;
  Instrument.reset ();
  let _ =
    Parallel.map ~jobs:4
      (fun i ->
        Instrument.span "par-span" (fun () -> Sys.opaque_identity i)
        |> ignore;
        Instrument.incr "par-count";
        i)
      (List.init 200 Fun.id)
  in
  (match List.assoc_opt "par-span" (Instrument.spans ()) with
  | Some s -> Alcotest.(check int) "all spans recorded" 200 s.Instrument.calls
  | None -> Alcotest.fail "par-span missing");
  Alcotest.(check (list (pair string int)))
    "all increments recorded" [ ("par-count", 200) ] (Instrument.counters ());
  Instrument.reset ();
  Instrument.set_enabled false

(* --- the bench-harness target parser --- *)

let available = [ "table-6.2"; "figure-2"; "micro" ]

let ok_options =
  Alcotest.testable
    (fun ppf (o : Cli.options) ->
      Fmt.pf ppf "{jobs=%a; timings=%b; interp=%a; json=%a; targets=[%s]}"
        Fmt.(option int)
        o.Cli.o_jobs o.Cli.o_timings
        Fmt.(option (of_to_string Uas_ir.Fast_interp.tier_name))
        o.Cli.o_interp
        Fmt.(option string)
        o.Cli.o_json
        (String.concat " " o.Cli.o_targets))
    ( = )

let check_ok msg args expected =
  match Cli.parse ~available args with
  | Ok o -> Alcotest.check ok_options msg expected o
  | Error e -> Alcotest.failf "%s: unexpected parse error %s" msg e

let check_error msg args =
  match Cli.parse ~available args with
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error e -> e

let defaults =
  { Cli.o_jobs = None;
    o_timings = false;
    o_interp = None;
    o_json = None;
    o_validate = false;
    o_exact = Uas_dfg.Sched.Exact_off;
    o_task_timeout = None;
    o_retries = None;
    o_fault = None;
    o_cache = None;
    o_cache_verify = false;
    o_cache_warm = false;
    o_version = false;
    o_targets = [] }

let test_cli_parse () =
  check_ok "no args" [] defaults;
  check_ok "targets in order" [ "micro"; "table-6.2" ]
    { defaults with Cli.o_targets = [ "micro"; "table-6.2" ] };
  check_ok "flags anywhere"
    [ "-j"; "4"; "table-6.2"; "--timings" ]
    { defaults with
      Cli.o_jobs = Some 4;
      o_timings = true;
      o_targets = [ "table-6.2" ] };
  check_ok "--jobs alias" [ "--jobs"; "2" ]
    { defaults with Cli.o_jobs = Some 2 }

let test_cli_parse_interp_json () =
  check_ok "--interp ref"
    [ "--interp"; "ref"; "micro" ]
    { defaults with
      Cli.o_interp = Some Uas_ir.Fast_interp.Ref;
      o_targets = [ "micro" ] };
  check_ok "--interp fast" [ "--interp"; "fast" ]
    { defaults with Cli.o_interp = Some Uas_ir.Fast_interp.Fast };
  check_ok "--json file" [ "--json"; "out.json" ]
    { defaults with Cli.o_json = Some "out.json" };
  ignore (check_error "--interp without value" [ "--interp" ]);
  ignore (check_error "--interp junk" [ "--interp"; "turbo" ]);
  ignore (check_error "--json without value" [ "--json" ])

let test_cli_rejects_unknown_target () =
  let e = check_error "typo" [ "table-6.2"; "tabel-6.3" ] in
  Alcotest.(check bool) "names the bad target" true
    (contains ~affix:"tabel-6.3" e);
  Alcotest.(check bool) "lists the valid targets" true
    (contains ~affix:"table-6.2" e
    && contains ~affix:"micro" e)

let test_cli_rejects_bad_jobs () =
  ignore (check_error "-j without value" [ "-j" ]);
  ignore (check_error "-j 0" [ "-j"; "0" ]);
  ignore (check_error "-j noise" [ "-j"; "lots" ])

let test_cli_parse_fault_flags () =
  check_ok "--validate off" [ "--validate"; "off" ] defaults;
  check_ok "--validate probe" [ "--validate"; "probe" ]
    { defaults with Cli.o_validate = true };
  check_ok "--task-timeout" [ "--task-timeout"; "2.5" ]
    { defaults with Cli.o_task_timeout = Some 2.5 };
  check_ok "--retries" [ "--retries"; "3" ]
    { defaults with Cli.o_retries = Some 3 };
  check_ok "--fault"
    [ "--fault"; "pass.run:raise:1" ]
    { defaults with Cli.o_fault = Some "pass.run:raise:1" };
  check_ok "--exact-ii off" [ "--exact-ii"; "off" ] defaults;
  check_ok "--exact-ii check" [ "--exact-ii"; "check" ]
    { defaults with Cli.o_exact = Uas_dfg.Sched.Exact_check };
  check_ok "--exact-ii report" [ "--exact-ii"; "report" ]
    { defaults with Cli.o_exact = Uas_dfg.Sched.Exact_report };
  ignore (check_error "--validate junk" [ "--validate"; "maybe" ]);
  ignore (check_error "--validate without value" [ "--validate" ]);
  ignore (check_error "--exact-ii junk" [ "--exact-ii"; "always" ]);
  ignore (check_error "--exact-ii without value" [ "--exact-ii" ]);
  ignore (check_error "--task-timeout 0" [ "--task-timeout"; "0" ]);
  ignore (check_error "--task-timeout noise" [ "--task-timeout"; "soon" ]);
  ignore (check_error "--retries -1" [ "--retries"; "-1" ]);
  ignore (check_error "--fault without value" [ "--fault" ])

(* The shared budget-flag validator behind nimblec, bench/main.exe and
   nimbled: nonsensical values are structured diagnostics that name
   the valid range. *)
let test_budget_validator () =
  let module Budget = Uas_runtime.Budget in
  (match Budget.timeout_of_string ~flag:"--task-timeout" "2.5" with
  | Ok t -> Alcotest.(check (float 0.0)) "valid timeout" 2.5 t
  | Error m -> Alcotest.failf "valid timeout rejected: %s" m);
  (match Budget.retries_of_string ~flag:"--retries" "0" with
  | Ok n -> Alcotest.(check int) "zero retries is valid" 0 n
  | Error m -> Alcotest.failf "zero retries rejected: %s" m);
  let reject_timeout name s =
    match Budget.timeout_of_string ~flag:"--task-timeout" s with
    | Ok _ -> Alcotest.failf "%s: accepted %s" name s
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the flag and range" name)
        true
        (Astring_contains.contains ~sub:"--task-timeout" m
        && Astring_contains.contains ~sub:Budget.timeout_range m)
  in
  List.iter
    (fun (name, s) -> reject_timeout name s)
    [ ("zero", "0"); ("negative", "-3"); ("nan", "nan");
      ("infinite", "inf"); ("beyond the cap", "1e9"); ("noise", "soon") ];
  let reject_retries name s =
    match Budget.retries_of_string ~flag:"--retries" s with
    | Ok _ -> Alcotest.failf "%s: accepted %s" name s
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s names the flag and range" name)
        true
        (Astring_contains.contains ~sub:"--retries" m
        && Astring_contains.contains ~sub:Budget.retries_range m)
  in
  List.iter
    (fun (name, s) -> reject_retries name s)
    [ ("negative", "-1"); ("beyond the cap", "1000"); ("noise", "many");
      ("fractional", "1.5") ]

let test_cli_parse_cache_flags () =
  check_ok "--cache dir"
    [ "--cache"; "/tmp/uas-store" ]
    { defaults with Cli.o_cache = Some "/tmp/uas-store" };
  check_ok "--cache-verify" [ "--cache-verify" ]
    { defaults with Cli.o_cache_verify = true };
  check_ok "--cache-warm" [ "--cache-warm" ]
    { defaults with Cli.o_cache_warm = true };
  check_ok "--version" [ "--version" ]
    { defaults with Cli.o_version = true };
  ignore (check_error "--cache without value" [ "--cache" ])

let suite =
  [ Alcotest.test_case "Parallel.map = List.map" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "Parallel.map edge sizes" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "Parallel.map order under skew" `Quick
      test_map_preserves_order_under_skew;
    Alcotest.test_case "Parallel.map re-raises first failure" `Quick
      test_map_reraises_first_input_failure;
    Alcotest.test_case "Parallel.map failure drains siblings" `Quick
      test_map_failure_still_completes_rest;
    Alcotest.test_case "Parallel.map_reduce" `Quick test_map_reduce;
    Alcotest.test_case "UAS_JOBS parsing" `Quick test_default_jobs_env;
    Alcotest.test_case "UAS_JOBS result API" `Quick test_default_jobs_result;
    Alcotest.test_case "map_results per-cell outcomes" `Quick
      test_map_results_per_cell;
    Alcotest.test_case "map_results timeout drains the pool" `Quick
      test_map_results_timeout_drains;
    Alcotest.test_case "map_results retries injected faults" `Quick
      test_map_results_retries_injected;
    Alcotest.test_case "map_results injected fault is per-cell" `Quick
      test_map_results_injected_not_retried;
    Alcotest.test_case "Fault plan grammar" `Quick test_fault_grammar;
    Alcotest.test_case "Fault nth counting" `Quick test_fault_nth_counting;
    Alcotest.test_case "Fault labels and scopes" `Quick
      test_fault_label_and_scope;
    Alcotest.test_case "Instrument disabled = no-op" `Quick
      test_instrument_disabled_is_noop;
    Alcotest.test_case "Instrument records spans/counters" `Quick
      test_instrument_records;
    Alcotest.test_case "Instrument under the pool" `Quick
      test_instrument_thread_safe;
    Alcotest.test_case "bench CLI: parse" `Quick test_cli_parse;
    Alcotest.test_case "bench CLI: --interp/--json" `Quick
      test_cli_parse_interp_json;
    Alcotest.test_case "bench CLI: unknown target" `Quick
      test_cli_rejects_unknown_target;
    Alcotest.test_case "bench CLI: bad -j" `Quick test_cli_rejects_bad_jobs;
    Alcotest.test_case "shared budget-flag validator" `Quick
      test_budget_validator;
    Alcotest.test_case "bench CLI: fault-tolerance flags" `Quick
      test_cli_parse_fault_flags;
    Alcotest.test_case "bench CLI: cache flags" `Quick
      test_cli_parse_cache_flags ]
