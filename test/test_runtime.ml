(* The runtime subsystem: the Domain pool (ordering, exception
   propagation, UAS_JOBS), the pass instrumentation registry (spans,
   counters, thread safety, JSON), and the bench-harness CLI parser. *)

module Parallel = Uas_runtime.Parallel
module Instrument = Uas_runtime.Instrument
module Cli = Uas_core.Cli

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- Parallel --- *)

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Parallel.map ~jobs f xs))
    [ 1; 2; 4; 8; 101 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map ~jobs:4 succ [ 1 ])

let test_map_preserves_order_under_skew () =
  (* earlier items do more work than later ones, so a pool that
     collected results in completion order would reverse them *)
  let xs = List.init 32 Fun.id in
  let f x =
    let spin = (32 - x) * 10_000 in
    let acc = ref x in
    for _ = 1 to spin do
      acc := !acc lxor ((!acc * 31) + 7)
    done;
    ignore !acc;
    x
  in
  Alcotest.(check (list int)) "input order" xs (Parallel.map ~jobs:4 f xs)

exception Boom of int

let test_map_reraises_first_input_failure () =
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (List.init 10 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
        Alcotest.(check int)
          (Printf.sprintf "first input-order failure (jobs=%d)" jobs)
          3 n)
    [ 1; 4 ]

let test_map_reduce () =
  let total =
    Parallel.map_reduce ~jobs:4 ~map:Fun.id ~reduce:( + ) ~init:0
      (List.init 100 succ)
  in
  Alcotest.(check int) "sum 1..100" 5050 total;
  (* non-commutative reduce still folds in input order *)
  let concat =
    Parallel.map_reduce ~jobs:4 ~map:string_of_int ~reduce:( ^ ) ~init:""
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check string) "ordered fold" "12345" concat

let test_default_jobs_env () =
  Unix.putenv Parallel.jobs_env_var "3";
  Alcotest.(check int) "UAS_JOBS=3" 3 (Parallel.default_jobs ());
  Unix.putenv Parallel.jobs_env_var "not-a-number";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "malformed UAS_JOBS accepted"
  | exception Invalid_argument _ -> ());
  Unix.putenv Parallel.jobs_env_var "0";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "UAS_JOBS=0 accepted"
  | exception Invalid_argument _ -> ());
  (* leave a sane value behind for any later default-jobs caller *)
  Unix.putenv Parallel.jobs_env_var "2"

(* --- Instrument --- *)

let test_instrument_disabled_is_noop () =
  Instrument.set_enabled false;
  Instrument.reset ();
  Alcotest.(check int) "span runs the thunk" 42
    (Instrument.span "noop" (fun () -> 42));
  Instrument.incr "noop-counter";
  Alcotest.(check bool) "nothing recorded" true
    (Instrument.spans () = [] && Instrument.counters () = [])

let test_instrument_records () =
  Instrument.set_enabled true;
  Instrument.reset ();
  for _ = 1 to 5 do
    ignore (Instrument.span "pass-a" (fun () -> Sys.opaque_identity 1))
  done;
  Instrument.incr "cells";
  Instrument.incr ~by:4 "cells";
  (match List.assoc_opt "pass-a" (Instrument.spans ()) with
  | None -> Alcotest.fail "span pass-a missing"
  | Some s ->
    Alcotest.(check int) "calls" 5 s.Instrument.calls;
    Alcotest.(check bool) "total >= max" true
      (s.Instrument.total_s >= s.Instrument.max_s));
  Alcotest.(check (list (pair string int)))
    "counter" [ ("cells", 5) ] (Instrument.counters ());
  (* spans record through exceptions too *)
  (try Instrument.span "pass-b" (fun () -> failwith "x") with Failure _ -> ());
  (match List.assoc_opt "pass-b" (Instrument.spans ()) with
  | Some s -> Alcotest.(check int) "exceptional call counted" 1 s.Instrument.calls
  | None -> Alcotest.fail "span pass-b missing");
  let json = Instrument.to_json () in
  Alcotest.(check bool) "json mentions spans and counters" true
    (contains ~affix:"\"pass-a\"" json
    && contains ~affix:"\"cells\":5" json);
  Instrument.reset ();
  Instrument.set_enabled false

let test_instrument_thread_safe () =
  Instrument.set_enabled true;
  Instrument.reset ();
  let _ =
    Parallel.map ~jobs:4
      (fun i ->
        Instrument.span "par-span" (fun () -> Sys.opaque_identity i)
        |> ignore;
        Instrument.incr "par-count";
        i)
      (List.init 200 Fun.id)
  in
  (match List.assoc_opt "par-span" (Instrument.spans ()) with
  | Some s -> Alcotest.(check int) "all spans recorded" 200 s.Instrument.calls
  | None -> Alcotest.fail "par-span missing");
  Alcotest.(check (list (pair string int)))
    "all increments recorded" [ ("par-count", 200) ] (Instrument.counters ());
  Instrument.reset ();
  Instrument.set_enabled false

(* --- the bench-harness target parser --- *)

let available = [ "table-6.2"; "figure-2"; "micro" ]

let ok_options =
  Alcotest.testable
    (fun ppf (o : Cli.options) ->
      Fmt.pf ppf "{jobs=%a; timings=%b; interp=%a; json=%a; targets=[%s]}"
        Fmt.(option int)
        o.Cli.o_jobs o.Cli.o_timings
        Fmt.(option (of_to_string Uas_ir.Fast_interp.tier_name))
        o.Cli.o_interp
        Fmt.(option string)
        o.Cli.o_json
        (String.concat " " o.Cli.o_targets))
    ( = )

let check_ok msg args expected =
  match Cli.parse ~available args with
  | Ok o -> Alcotest.check ok_options msg expected o
  | Error e -> Alcotest.failf "%s: unexpected parse error %s" msg e

let check_error msg args =
  match Cli.parse ~available args with
  | Ok _ -> Alcotest.failf "%s: expected an error" msg
  | Error e -> e

let defaults =
  { Cli.o_jobs = None;
    o_timings = false;
    o_interp = None;
    o_json = None;
    o_targets = [] }

let test_cli_parse () =
  check_ok "no args" [] defaults;
  check_ok "targets in order" [ "micro"; "table-6.2" ]
    { defaults with Cli.o_targets = [ "micro"; "table-6.2" ] };
  check_ok "flags anywhere"
    [ "-j"; "4"; "table-6.2"; "--timings" ]
    { defaults with
      Cli.o_jobs = Some 4;
      o_timings = true;
      o_targets = [ "table-6.2" ] };
  check_ok "--jobs alias" [ "--jobs"; "2" ]
    { defaults with Cli.o_jobs = Some 2 }

let test_cli_parse_interp_json () =
  check_ok "--interp ref"
    [ "--interp"; "ref"; "micro" ]
    { defaults with
      Cli.o_interp = Some Uas_ir.Fast_interp.Ref;
      o_targets = [ "micro" ] };
  check_ok "--interp fast" [ "--interp"; "fast" ]
    { defaults with Cli.o_interp = Some Uas_ir.Fast_interp.Fast };
  check_ok "--json file" [ "--json"; "out.json" ]
    { defaults with Cli.o_json = Some "out.json" };
  ignore (check_error "--interp without value" [ "--interp" ]);
  ignore (check_error "--interp junk" [ "--interp"; "turbo" ]);
  ignore (check_error "--json without value" [ "--json" ])

let test_cli_rejects_unknown_target () =
  let e = check_error "typo" [ "table-6.2"; "tabel-6.3" ] in
  Alcotest.(check bool) "names the bad target" true
    (contains ~affix:"tabel-6.3" e);
  Alcotest.(check bool) "lists the valid targets" true
    (contains ~affix:"table-6.2" e
    && contains ~affix:"micro" e)

let test_cli_rejects_bad_jobs () =
  ignore (check_error "-j without value" [ "-j" ]);
  ignore (check_error "-j 0" [ "-j"; "0" ]);
  ignore (check_error "-j noise" [ "-j"; "lots" ])

let suite =
  [ Alcotest.test_case "Parallel.map = List.map" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "Parallel.map edge sizes" `Quick
      test_map_empty_and_singleton;
    Alcotest.test_case "Parallel.map order under skew" `Quick
      test_map_preserves_order_under_skew;
    Alcotest.test_case "Parallel.map re-raises first failure" `Quick
      test_map_reraises_first_input_failure;
    Alcotest.test_case "Parallel.map_reduce" `Quick test_map_reduce;
    Alcotest.test_case "UAS_JOBS parsing" `Quick test_default_jobs_env;
    Alcotest.test_case "Instrument disabled = no-op" `Quick
      test_instrument_disabled_is_noop;
    Alcotest.test_case "Instrument records spans/counters" `Quick
      test_instrument_records;
    Alcotest.test_case "Instrument under the pool" `Quick
      test_instrument_thread_safe;
    Alcotest.test_case "bench CLI: parse" `Quick test_cli_parse;
    Alcotest.test_case "bench CLI: --interp/--json" `Quick
      test_cli_parse_interp_json;
    Alcotest.test_case "bench CLI: unknown target" `Quick
      test_cli_rejects_unknown_target;
    Alcotest.test_case "bench CLI: bad -j" `Quick test_cli_rejects_bad_jobs ]
