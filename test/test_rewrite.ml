(* The first-class rewrite layer: registry completeness, the uniform
   (Cu.t, Diag.t) result application contract, check/apply agreement,
   the no-escaping-exception guarantee through Pass.run, agreement with
   the direct transform entry points, and the cost-model planner built
   on top of the registry. *)

open Uas_ir
module B = Builder
module Rw = Uas_transform.Rewrite
module Sq = Uas_transform.Squash
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Pass = Uas_pass.Pass
module Stages = Uas_pass.Stages
module P = Uas_core.Planner
module R = Uas_bench_suite.Registry

let expected_names =
  [ "interchange"; "tiling"; "peel"; "fusion"; "distribute"; "flatten";
    "hoist"; "ifconv"; "scalarize"; "scalar-opts"; "expand"; "pipeline-sw";
    "unroll"; "jam"; "squash" ]

let cu_of p = Cu.make p ~outer_index:"i" ~inner_index:"j"
let params ?target ?factor ?cut () = { Rw.target; factor; cut }

(* --- the registry --------------------------------------------------- *)

let test_registry_names () =
  Alcotest.(check (list string))
    "all 15 transforms registered, in order" expected_names (Rw.names ())

let test_registry_lookup () =
  Alcotest.(check bool) "find squash" true (Rw.find "squash" <> None);
  Alcotest.(check bool) "find unknown" true (Rw.find "unsquash" = None);
  (match Rw.get "unsquash" with
  | exception Invalid_argument m ->
    Alcotest.(check bool)
      "error lists the valid names" true
      (Helpers.contains ~sub:"squash" m)
  | _ -> Alcotest.fail "get on an unknown name must raise");
  match Rw.register (Rw.get "squash") with
  | exception Invalid_argument m ->
    Alcotest.(check bool)
      "duplicate rejected" true
      (Helpers.contains ~sub:"duplicate" m)
  | () -> Alcotest.fail "duplicate registration must be rejected"

(* every catalog entry carries the documentation docs/TRANSFORMS.md is
   generated from *)
let test_catalog_documented () =
  List.iter
    (fun (rw : Rw.t) ->
      let nonempty what s =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s documented" rw.Rw.rw_name what)
          true
          (String.length s > 0)
      in
      nonempty "summary" rw.Rw.rw_summary;
      nonempty "section" rw.Rw.rw_section;
      nonempty "legality" rw.Rw.rw_legality;
      nonempty "parameters" rw.Rw.rw_parameters;
      nonempty "failure modes" rw.Rw.rw_failure_modes)
    (Rw.all ())

(* the --dump-after selector space: stage names and rewrite names must
   never collide *)
let test_selector_names_unique () =
  let all = Stages.names @ Rw.names () in
  Alcotest.(check int)
    "pass and rewrite names never collide" (List.length all)
    (List.length (List.sort_uniq compare all))

(* docs/TRANSFORMS.md documents the same catalog: every registered
   rewrite has a `name` table row (declared as a test dep; skipped when
   run outside the dune sandbox) *)
let test_catalog_in_docs () =
  match
    List.find_opt Sys.file_exists
      [ "../docs/TRANSFORMS.md"; "docs/TRANSFORMS.md" ]
  with
  | None -> Alcotest.skip ()
  | Some path ->
    let ic = open_in path in
    let len = in_channel_length ic in
    let doc = really_input_string ic len in
    close_in ic;
    List.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "docs/TRANSFORMS.md has a `%s` row" n)
          true
          (Helpers.contains ~sub:(Printf.sprintf "| `%s` |" n) doc))
      (Rw.names ())

(* --- uniform application -------------------------------------------- *)

(* every rewrite, applied with generic parameters: the outcome is
   always Ok or a diagnostic attributed to the rewrite by name — and Ok
   programs compute the same outputs as the original *)
let uniform_on ~msg p ~factor =
  List.iter
    (fun (rw : Rw.t) ->
      let name = Rw.name rw in
      let case = Printf.sprintf "%s/%s" msg name in
      match Rw.apply ~params:(params ~factor ~cut:1 ()) rw (cu_of p) with
      | Ok cu' -> Helpers.assert_equivalent ~msg:case p (Cu.program cu')
      | Error d ->
        Alcotest.(check string)
          (case ^ ": diagnostic attributed to the rewrite")
          name d.Diag.d_pass
      | exception e ->
        Alcotest.failf "%s: escaped exception %s" case (Printexc.to_string e))
    (Rw.all ())

let test_uniform_application () =
  uniform_on ~msg:"fg" (Helpers.fg_loop ~m:6 ~n:4) ~factor:2;
  uniform_on ~msg:"mem" (Helpers.memory_loop ~m:8 ~n:4) ~factor:4

let test_missing_parameter_diagnostics () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  List.iter
    (fun n ->
      match Rw.apply (Rw.get n) (cu_of p) with
      | Error d ->
        Alcotest.(check bool)
          (n ^ ": missing factor reported")
          true
          (Helpers.contains ~sub:"missing required parameter: factor"
             (Diag.to_string d))
      | Ok _ -> Alcotest.failf "%s: must fail without a factor" n)
    [ "tiling"; "peel"; "pipeline-sw"; "unroll"; "jam"; "squash" ];
  match Rw.apply (Rw.get "distribute") (cu_of p) with
  | Error d ->
    Alcotest.(check bool)
      "distribute: missing cut reported" true
      (Helpers.contains ~sub:"missing required parameter: cut"
         (Diag.to_string d))
  | Ok _ -> Alcotest.fail "distribute: must fail without a cut"

(* check answers exactly the question apply decides: same verdict, same
   diagnostic text, across legal and illegal parameter sets *)
let test_check_agrees_with_apply () =
  let programs =
    [ Helpers.fg_loop ~m:6 ~n:4; Helpers.memory_loop ~m:4 ~n:6 ]
  in
  let param_sets =
    [ params (); params ~factor:0 (); params ~factor:2 ~cut:1 ();
      params ~factor:3 ~cut:99 ~target:"ghost" () ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun ps ->
          List.iter
            (fun rw ->
              match (Rw.check ~params:ps rw (cu_of p),
                     Rw.apply ~params:ps rw (cu_of p))
              with
              | None, Ok _ -> ()
              | Some d, Error d' ->
                Alcotest.(check string)
                  (Rw.name rw ^ ": same diagnostic")
                  (Diag.to_string d) (Diag.to_string d')
              | Some d, Ok _ ->
                Alcotest.failf "%s: check refused (%s) but apply succeeded"
                  (Rw.name rw) (Diag.to_string d)
              | None, Error d ->
                Alcotest.failf "%s: check passed but apply failed (%s)"
                  (Rw.name rw) (Diag.to_string d))
            (Rw.all ()))
        param_sets)
    programs

(* the satellite guarantee: no parameter set makes any rewrite escape
   Pass.run as a backtrace — every failure is a structured diagnostic *)
let test_no_exception_escapes_pass_run () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  let param_sets =
    [ Rw.default_params; params ~factor:0 ();
      params ~factor:(-3) ~cut:(-1) ();
      params ~factor:2 ~cut:1 ~target:"ghost" (); params ~factor:7 ~cut:42 () ]
  in
  List.iter
    (fun ps ->
      List.iter
        (fun rw ->
          match Pass.run (cu_of p) [ Rw.to_pass ~params:ps rw ] with
          | Ok _ | Error _ -> ()
          | exception e ->
            Alcotest.failf "%s: exception escaped Pass.run: %s" (Rw.name rw)
              (Printexc.to_string e))
        (Rw.all ()))
    param_sets

(* --- agreement with the direct entry points ------------------------- *)

let test_squash_registry_matches_direct () =
  let p = Helpers.fg_loop ~m:8 ~n:4 in
  let direct = Sq.apply p (Helpers.nest_of p "i") ~ds:4 in
  match Rw.apply ~params:(params ~factor:4 ()) (Rw.get "squash") (cu_of p) with
  | Error d -> Alcotest.failf "squash via registry failed: %s" (Diag.to_string d)
  | Ok cu' ->
    Alcotest.(check bool)
      "same transformed program" true
      (Cu.program cu' = direct.Sq.program);
    Alcotest.(check string) "kernel re-pointed to the steady loop"
      direct.Sq.new_inner_index (Cu.inner_index cu');
    Alcotest.(check string) "outer index unchanged" "i" (Cu.outer_index cu')

(* a perfect static nest, every (i, j) iteration writing its own cell:
   interchange and flattening are legal here *)
let perfect_nest ~m ~n =
  B.program "perfect"
    ~locals:[ ("i", Types.Tint); ("j", Types.Tint); ("t", Types.Tint) ]
    ~arrays:[ B.input "src" (m * n); B.output "dst" (m * n) ]
    [ B.for_ "i" ~hi:(B.int m)
        [ B.for_ "j" ~hi:(B.int n)
            [ B.("t" <-- load "src" ((v "i" * int n) + v "j"));
              B.store "dst" B.((v "i" * int n) + v "j") B.(v "t" + int 1) ] ]
    ]

let test_interchange_repoints_kernel () =
  let p = perfect_nest ~m:4 ~n:6 in
  match Rw.apply (Rw.get "interchange") (cu_of p) with
  | Error d -> Alcotest.failf "interchange refused: %s" (Diag.to_string d)
  | Ok cu' ->
    Alcotest.(check string) "outer index" "j" (Cu.outer_index cu');
    Alcotest.(check string) "inner index" "i" (Cu.inner_index cu');
    Helpers.assert_equivalent ~msg:"interchange" p (Cu.program cu')

let test_flatten_repoints_kernel () =
  let p = perfect_nest ~m:3 ~n:5 in
  match Rw.apply (Rw.get "flatten") (cu_of p) with
  | Error d -> Alcotest.failf "flatten refused: %s" (Diag.to_string d)
  | Ok cu' ->
    Alcotest.(check string) "collapsed kernel: a single loop"
      (Cu.outer_index cu') (Cu.inner_index cu');
    Alcotest.(check bool)
      "fresh flat index" true
      (not (String.equal (Cu.outer_index cu') "i"));
    Helpers.assert_equivalent ~msg:"flatten" p (Cu.program cu')

(* --- the planner ---------------------------------------------------- *)

let test_planner_objective_parsing () =
  List.iter
    (fun (s, o) ->
      Alcotest.(check bool) s true (P.objective_of_string s = o))
    [ ("ii", Some P.Ii); ("area", Some P.Area); ("ratio", Some P.Ratio);
      ("latency", None) ];
  Alcotest.(check string) "name" "ratio" (P.objective_name P.Ratio)

let test_planner_search_space () =
  let cands = P.candidates () in
  (* the two baselines plus every enabling prefix × squash factor *)
  Alcotest.(check int) "search-space size"
    (2 + (List.length P.enabling_prefixes * List.length P.default_factors))
    (List.length cands);
  let labels = List.map (fun c -> c.P.c_label) cands in
  Alcotest.(check int) "labels unique" (List.length labels)
    (List.length (List.sort_uniq compare labels));
  List.iter
    (fun c ->
      if c.P.c_ds > 1 then
        match List.rev c.P.c_sequence with
        | "squash" :: _ -> ()
        | _ -> Alcotest.failf "%s: sequence must end in squash" c.P.c_label)
    cands

let skipjack_plan objective =
  let b = R.skipjack_mem ~m:8 () in
  P.plan ~jobs:2 ~objective b.R.b_program ~outer_index:b.R.b_outer_index
    ~inner_index:b.R.b_inner_index ~benchmark:b.R.b_name

(* the ISSUE acceptance criterion: on Skipjack, some squash DS=4 plan
   must beat the untransformed DS=1 design on initiation interval *)
let test_planner_ranks_skipjack () =
  let plan = skipjack_plan P.Ii in
  Alcotest.(check int) "whole search space accounted for"
    (List.length (P.candidates ()))
    (List.length plan.P.p_rows);
  Alcotest.(check bool) "baseline measured" true (plan.P.p_baseline <> None);
  (match
     ( P.rank_of plan (fun c -> c.P.c_ds = 4),
       P.rank_of plan (fun c -> String.equal c.P.c_label "original") )
   with
  | Some s, Some o ->
    Alcotest.(check bool)
      (Printf.sprintf "squash DS=4 (rank %d) beats DS=1 (rank %d) on II" s o)
      true (s < o)
  | _ -> Alcotest.fail "both squash(4) and the original must be estimated");
  (* ranking is deterministic, and the table renders *)
  let labels p = List.map (fun r -> r.P.r_candidate.P.c_label) p.P.p_rows in
  Alcotest.(check (list string))
    "deterministic ranking" (labels plan)
    (labels (skipjack_plan P.Ii));
  Alcotest.(check bool) "pp renders" true
    (String.length (Fmt.str "%a" P.pp plan) > 0)

let suite =
  [ Alcotest.test_case "registry names" `Quick test_registry_names;
    Alcotest.test_case "registry lookup and duplicates" `Quick
      test_registry_lookup;
    Alcotest.test_case "catalog fully documented" `Quick
      test_catalog_documented;
    Alcotest.test_case "dump-after selectors unique" `Quick
      test_selector_names_unique;
    Alcotest.test_case "catalog documented in docs/TRANSFORMS.md" `Quick
      test_catalog_in_docs;
    Alcotest.test_case "uniform result application" `Quick
      test_uniform_application;
    Alcotest.test_case "missing parameters are diagnostics" `Quick
      test_missing_parameter_diagnostics;
    Alcotest.test_case "check agrees with apply" `Quick
      test_check_agrees_with_apply;
    Alcotest.test_case "no exception escapes Pass.run" `Quick
      test_no_exception_escapes_pass_run;
    Alcotest.test_case "squash via registry = direct" `Quick
      test_squash_registry_matches_direct;
    Alcotest.test_case "interchange re-points the kernel" `Quick
      test_interchange_repoints_kernel;
    Alcotest.test_case "flatten re-points the kernel" `Quick
      test_flatten_repoints_kernel;
    Alcotest.test_case "planner objective parsing" `Quick
      test_planner_objective_parsing;
    Alcotest.test_case "planner search space" `Quick test_planner_search_space;
    Alcotest.test_case "planner ranks Skipjack (DS=4 beats DS=1)" `Slow
      test_planner_ranks_skipjack ]
