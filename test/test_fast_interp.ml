(* The fast-tier contract: the slot-compiled interpreter must be
   observationally identical to the reference tree-walker — outputs,
   final scalars, the complete cycle/trip/mem-ref profile, the same
   Stuck messages and the same Out_of_fuel cutoff.  The reference
   interpreter stays the oracle everywhere in this file; the fast tier
   is always the candidate. *)

open Uas_ir
module N = Uas_core.Nimble
module R = Uas_bench_suite.Registry

(* run both tiers; fail the test with the first difference *)
let check_parity ~msg (p : Stmt.program) (w : Interp.workload) =
  let reference = Interp.run p w in
  let fast = Fast_interp.run_program p w in
  match Interp.diff_results reference fast with
  | None -> ()
  | Some d -> Alcotest.failf "%s: fast tier diverges: %s" msg d

(* --- random nests, all transform versions ------------------------- *)

let fast_versions = [ N.Original; N.Squashed 2; N.Squashed 4; N.Jammed 2;
                      N.Combined (2, 2) ]

let test_qcheck_fast_tier_bit_identical =
  QCheck.Test.make
    ~name:"fast tier = reference (results + profiles), all versions"
    ~count:40 Helpers.arbitrary_diff_nest_program
    (fun p ->
      let w = Helpers.random_workload ~seed:23 p in
      List.iter
        (fun v ->
          match
            N.build_version_result p ~outer_index:"i" ~inner_index:"j" v
          with
          | Error _ -> ()  (* illegal at this factor: dropped, as in sweep *)
          | Ok b -> (
            let reference = Interp.run b.N.bv_program w in
            let fast = Fast_interp.run_program b.N.bv_program w in
            match Interp.diff_results reference fast with
            | None -> ()
            | Some d ->
              QCheck.Test.fail_reportf "%s: fast tier diverges: %s@\n%a"
                (N.version_name v) d Pp.pp_program b.N.bv_program))
        fast_versions;
      true)

(* compilation must be reusable: one compiled program replayed on
   several workloads, each bit-identical to a fresh reference run *)
let test_compiled_reuse =
  QCheck.Test.make ~name:"one compilation, many workloads" ~count:20
    Helpers.arbitrary_nest_program
    (fun p ->
      let compiled = Fast_interp.compile p in
      List.iter
        (fun seed ->
          let w = Helpers.random_workload ~seed p in
          let reference = Interp.run p w in
          let fast = Fast_interp.run compiled w in
          match Interp.diff_results reference fast with
          | None -> ()
          | Some d ->
            QCheck.Test.fail_reportf "seed %d: fast tier diverges: %s" seed d)
        [ 1; 2; 3 ];
      true)

(* --- rewritten nests, both tiers ---------------------------------- *)

module Rw = Uas_transform.Rewrite
module Cu = Uas_pass.Cu

let rw_params ?target ?factor ?cut () = { Rw.target; factor; cut }

let apply_rewrite name params p =
  Rw.apply ~params (Rw.get name)
    (Cu.make p ~outer_index:"i" ~inner_index:"j")

(* a legal rewrite must (1) preserve the reference outputs and (2) keep
   the two tiers bit-identical on the rewritten program *)
let check_rewritten_parity ~msg p q w =
  (match Interp.diff_outputs (Interp.run p w) (Interp.run q w) with
  | None -> ()
  | Some d ->
    Alcotest.failf "%s: rewrite changed the outputs: %s@\n%a" msg d
      Pp.pp_program q);
  match Interp.diff_results (Interp.run q w) (Fast_interp.run_program q w) with
  | None -> ()
  | Some d ->
    Alcotest.failf "%s: fast tier diverges: %s@\n%a" msg d Pp.pp_program q

(* the enabling rewrites on random nests: tiling always applies;
   distribution (and fusion re-merging its output) whenever the cut is
   legal on the generated body *)
let test_qcheck_enabling_rewrites_parity =
  QCheck.Test.make
    ~name:"tiling/distribute/fusion keep tiers bit-identical (random nests)"
    ~count:40 Helpers.arbitrary_diff_nest_program
    (fun p ->
      let w = Helpers.random_workload ~seed:31 p in
      (match apply_rewrite "tiling" (rw_params ~factor:3 ()) p with
      | Error d ->
        Alcotest.failf "tiling refused: %s" (Uas_pass.Diag.to_string d)
      | Ok cu -> check_rewritten_parity ~msg:"tiling" p (Cu.program cu) w);
      (match apply_rewrite "distribute" (rw_params ~cut:1 ()) p with
      | Error _ -> () (* a value crosses the cut: legitimately refused *)
      | Ok cu -> (
        let q = Cu.program cu in
        check_rewritten_parity ~msg:"distribute" p q w;
        match apply_rewrite "fusion" Rw.default_params q with
        | Error _ -> ()
        | Ok cu2 ->
          check_rewritten_parity ~msg:"distribute+fusion" p (Cu.program cu2) w));
      true)

(* perfect static nests are interchange/flatten-legal by construction:
   assert the rewrites apply, then check both tiers on the result *)
let test_qcheck_perfect_nest_rewrites_parity =
  QCheck.Test.make
    ~name:"interchange/flatten/tiling keep tiers bit-identical (perfect nests)"
    ~count:40 Helpers.arbitrary_perfect_nest_program
    (fun p ->
      let w = Helpers.random_workload ~seed:47 p in
      List.iter
        (fun (msg, name, ps) ->
          match apply_rewrite name ps p with
          | Error d ->
            Alcotest.failf "%s refused on a perfect nest: %s" msg
              (Uas_pass.Diag.to_string d)
          | Ok cu -> check_rewritten_parity ~msg p (Cu.program cu) w)
        [ ("interchange", "interchange", Rw.default_params);
          ("tiling(2)", "tiling", rw_params ~factor:2 ());
          ("flatten", "flatten", Rw.default_params) ];
      true)

(* distribution then fusion on a two-stream nest, both legal by
   construction — the guaranteed-coverage counterpart of the
   opportunistic random-nest case above *)
let test_distribute_fusion_parity () =
  let m = 4 and n = 6 in
  let module B = Builder in
  let at = B.((v "i" * int n) + v "j") in
  let p =
    B.program "streams"
      ~locals:[ ("i", Types.Tint); ("j", Types.Tint) ]
      ~arrays:
        [ B.input "s1" (m * n); B.input "s2" (m * n); B.output "d1" (m * n);
          B.output "d2" (m * n) ]
      [ B.for_ "i" ~hi:(B.int m)
          [ B.for_ "j" ~hi:(B.int n)
              [ B.store "d1" at (B.load "s1" at);
                B.store "d2" at (B.load "s2" at) ] ]
      ]
  in
  let w = Helpers.random_workload p in
  match apply_rewrite "distribute" (rw_params ~cut:1 ()) p with
  | Error d -> Alcotest.failf "distribute refused: %s" (Uas_pass.Diag.to_string d)
  | Ok cu -> (
    let q = Cu.program cu in
    check_rewritten_parity ~msg:"distribute" p q w;
    match apply_rewrite "fusion" Rw.default_params q with
    | Error d -> Alcotest.failf "fusion refused: %s" (Uas_pass.Diag.to_string d)
    | Ok cu2 -> check_rewritten_parity ~msg:"fusion" p (Cu.program cu2) w)

(* --- the whole Table 6.1 suite ------------------------------------ *)

let test_registry_benchmarks_identical () =
  List.iter
    (fun (b : R.benchmark) ->
      check_parity ~msg:b.R.b_name b.R.b_program b.R.b_workload)
    (R.all () @ R.extras ())

let test_registry_check_fast_tier () =
  List.iter
    (fun (b : R.benchmark) ->
      match R.check_against_reference ~tier:Fast_interp.Fast b b.R.b_program with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: fast-tier check failed: %s" b.R.b_name e)
    (R.all () @ R.extras ())

(* --- Stuck parity -------------------------------------------------- *)

module B = Builder

let stuck_of f =
  match f () with
  | (_ : Interp.result) -> None
  | exception Interp.Stuck m -> Some m

let check_stuck_parity ~msg p w =
  let reference = stuck_of (fun () -> Interp.run p w) in
  let fast = stuck_of (fun () -> Fast_interp.run_program p w) in
  match (reference, fast) with
  | Some a, Some b -> Alcotest.(check string) (msg ^ ": same message") a b
  | None, None -> Alcotest.failf "%s: expected Stuck from both tiers" msg
  | Some a, None -> Alcotest.failf "%s: only reference stuck (%s)" msg a
  | None, Some b -> Alcotest.failf "%s: only fast tier stuck (%s)" msg b

let w0 = Interp.workload ()

let nest body =
  B.program "stuck" ~locals:[ ("i", Types.Tint); ("a", Types.Tint) ]
    ~arrays:[ B.output "dst" 4 ]
    ~roms:[ B.rom_decl "tab" [| 1; 2; 3 |] ]
    [ B.for_ "i" ~hi:(B.int 4) body ]

let test_stuck_parity () =
  check_stuck_parity ~msg:"store out of bounds"
    (nest [ B.store "dst" (B.int 9) (B.v "i") ])
    w0;
  check_stuck_parity ~msg:"load from undeclared array"
    (nest [ B.("a" <-- load "nope" (v "i")) ])
    w0;
  check_stuck_parity ~msg:"store to undeclared array"
    (nest [ B.store "nope" (B.v "i") (B.v "i") ])
    w0;
  check_stuck_parity ~msg:"read of undeclared scalar"
    (nest [ B.store "dst" (B.v "i") (B.v "ghost") ])
    w0;
  check_stuck_parity ~msg:"assignment to undeclared scalar"
    (nest [ B.("ghost" <-- v "i") ])
    w0;
  check_stuck_parity ~msg:"division by zero"
    (nest [ B.("a" <-- v "i" / (v "i" - v "i")) ])
    w0;
  check_stuck_parity ~msg:"rom lookup out of bounds"
    (nest [ B.("a" <-- rom "tab" (v "i" + int 2)) ])
    w0;
  check_stuck_parity ~msg:"lookup in undeclared rom"
    (nest [ B.("a" <-- rom "missing" (v "i")) ])
    w0;
  check_stuck_parity ~msg:"non-integer loop bound"
    (B.program "fbound" ~locals:[ ("i", Types.Tint) ]
       [ B.for_ "i" ~hi:(B.flt 2.0) [] ])
    w0;
  check_stuck_parity ~msg:"workload sets undeclared scalar"
    (nest [ B.store "dst" (B.v "i") (B.v "i") ])
    (Interp.workload ~scalars:[ ("ghost", Types.VInt 1) ] ());
  check_stuck_parity ~msg:"workload array length mismatch"
    (B.program "wl" ~locals:[ ("i", Types.Tint) ]
       ~arrays:[ B.input "src" 4; B.output "dst" 4 ]
       [ B.for_ "i" ~hi:(B.int 4)
           [ B.store "dst" (B.v "i") (B.load "src" (B.v "i")) ] ])
    (Interp.workload ~arrays:[ ("src", [| Types.VInt 1 |]) ] ())

(* an undeclared loop index is admitted dynamically by the reference
   interpreter: legal to read after its loop ran, stuck before *)
let test_undeclared_index_parity () =
  let p after =
    B.program "undecl" ~locals:[ ("a", Types.Tint) ]
      ~arrays:[ B.output "dst" 4 ]
      ([ B.for_ "u" ~hi:(B.int 3) [ B.("a" <-- v "u") ] ] @ after)
  in
  check_parity ~msg:"read undeclared index after its loop"
    (p [ B.store "dst" (B.int 0) (B.v "u") ])
    w0;
  check_stuck_parity ~msg:"read undeclared index before its loop"
    (B.program "undecl2" ~locals:[ ("a", Types.Tint) ]
       ~arrays:[ B.output "dst" 4 ]
       [ B.store "dst" (B.int 0) (B.v "u");
         B.for_ "u" ~hi:(B.int 3) [ B.("a" <-- v "u") ] ])
    w0;
  (* a zero-trip loop still defines its index (the C-style exit value) *)
  check_parity ~msg:"zero-trip loop defines its index"
    (p [ B.for_ "u" ~lo:(B.int 5) ~hi:(B.int 2) [];
         B.store "dst" (B.int 1) (B.v "u") ])
    w0

(* --- Out_of_fuel parity -------------------------------------------- *)

let test_fuel_parity () =
  let p = Helpers.fg_loop ~m:4 ~n:4 in
  let w = Helpers.random_workload p in
  (* total statements executed by a full run *)
  let full = (Interp.run p w).Interp.profile.Interp.stmts_executed in
  let runs_with fuel f =
    match f fuel with
    | (_ : Interp.result) -> true
    | exception Interp.Out_of_fuel -> false
  in
  List.iter
    (fun fuel ->
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d: same cutoff" fuel)
        (runs_with fuel (fun fuel -> Interp.run ~fuel p w))
        (runs_with fuel (fun fuel -> Fast_interp.run_program ~fuel p w)))
    [ 1; 2; full - 1; full; full + 1 ]

(* --- tier plumbing ------------------------------------------------- *)

let test_tier_of_string () =
  let check s expected =
    Alcotest.(check bool) s true (Fast_interp.tier_of_string s = expected)
  in
  check "ref" (Some Fast_interp.Ref);
  check "reference" (Some Fast_interp.Ref);
  check "fast" (Some Fast_interp.Fast);
  check "FAST" (Some Fast_interp.Fast);
  check "turbo" None

let test_run_tier_dispatch () =
  let p = Helpers.fg_loop ~m:3 ~n:3 in
  let w = Helpers.random_workload p in
  let a = Fast_interp.run_tier Fast_interp.Ref p w in
  let b = Fast_interp.run_tier Fast_interp.Fast p w in
  match Interp.diff_results a b with
  | None -> ()
  | Some d -> Alcotest.failf "tiers diverge: %s" d

(* the satellite fix: a missing output array must be reported with the
   benchmark name and the outputs the run actually produced *)
let test_registry_missing_output_message () =
  let b = R.skipjack_mem ~m:4 () in
  let b' =
    { b with R.b_reference = [ ("data_missing", [| Types.VInt 0 |]) ] }
  in
  match R.check_against_reference ~tier:Fast_interp.Fast b' b.R.b_program with
  | Ok () -> Alcotest.fail "expected a missing-output error"
  | Error msg ->
    let has sub =
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S" sub)
        true
        (Helpers.contains ~sub msg)
    in
    has "Skipjack-mem";
    has "data_missing";
    has "data_out"

(* the experiments path: table cells must verify identically on either
   tier (the sweep runs verification on the fast tier by default) *)
let test_run_benchmark_tiers_agree () =
  let module E = Uas_core.Experiments in
  let b = R.skipjack_mem ~m:8 () in
  let row tier =
    (E.run_benchmark ~verify:true ~tier ~versions:fast_versions ~jobs:2 b)
      .E.br_cells
  in
  let fast = row Fast_interp.Fast and reference = row Fast_interp.Ref in
  Alcotest.(check int) "cell count" (List.length reference) (List.length fast);
  List.iter2
    (fun (c1 : E.cell) (c2 : E.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s verified on both tiers"
           (N.version_name c1.E.c_version))
        true
        (c1.E.c_verified && c2.E.c_verified);
      Alcotest.(check bool) "same report" true (c1.E.c_report = c2.E.c_report))
    reference fast

let suite =
  [ QCheck_alcotest.to_alcotest test_qcheck_fast_tier_bit_identical;
    QCheck_alcotest.to_alcotest test_compiled_reuse;
    QCheck_alcotest.to_alcotest test_qcheck_enabling_rewrites_parity;
    QCheck_alcotest.to_alcotest test_qcheck_perfect_nest_rewrites_parity;
    Alcotest.test_case "distribute+fusion parity (two streams)" `Quick
      test_distribute_fusion_parity;
    Alcotest.test_case "registry benchmarks bit-identical" `Slow
      test_registry_benchmarks_identical;
    Alcotest.test_case "registry check passes on fast tier" `Slow
      test_registry_check_fast_tier;
    Alcotest.test_case "Stuck parity (messages bit-identical)" `Quick
      test_stuck_parity;
    Alcotest.test_case "undeclared loop index parity" `Quick
      test_undeclared_index_parity;
    Alcotest.test_case "Out_of_fuel parity" `Quick test_fuel_parity;
    Alcotest.test_case "tier_of_string" `Quick test_tier_of_string;
    Alcotest.test_case "run_tier dispatch" `Quick test_run_tier_dispatch;
    Alcotest.test_case "missing output error names benchmark" `Quick
      test_registry_missing_output_message;
    Alcotest.test_case "run_benchmark: ref and fast tiers agree" `Slow
      test_run_benchmark_tiers_agree ]
