(* Skipjack on the full flow: encrypt a real message with the IR
   program, sweep all ten paper versions through the Nimble-style
   driver, and let kernel selection pick the best design.

   Run with:  dune exec examples/skipjack_crypto.exe *)

module S = Uas_bench_suite
module N = Uas_core.Nimble

let message = "Unroll-and-squash pipelines nested loops efficiently, 2001."

(* pack the message into 16-bit words, 4 words (8 bytes) per block *)
let words_of_string s =
  let padded =
    let rem = String.length s mod 8 in
    if rem = 0 then s else s ^ String.make (8 - rem) ' '
  in
  Array.init
    (String.length padded / 2)
    (fun k ->
      (Char.code padded.[2 * k] lsl 8) lor Char.code padded.[(2 * k) + 1])

let () =
  let key = [| 0x00; 0x99; 0x88; 0x77; 0x66; 0x55; 0x44; 0x33; 0x22; 0x11 |] in
  let words = words_of_string message in
  let blocks = Array.length words / 4 in
  Fmt.pr "encrypting %d blocks with Skipjack (hw variant)@." blocks;

  (* the IR program, with the key baked into the ROM *)
  let program = S.Skipjack.skipjack_hw ~m:blocks ~key in
  let r = Uas_ir.Interp.run program (S.Skipjack.workload_hw words) in
  let cipher = List.assoc "data_out" r.Uas_ir.Interp.outputs in
  Fmt.pr "ciphertext (first 8 words):";
  Array.iteri
    (fun k v ->
      if k < 8 then
        match v with Uas_ir.Types.VInt x -> Fmt.pr " %04x" x | _ -> ())
    cipher;
  Fmt.pr "@.";

  (* the host reference agrees *)
  let reference = S.Skipjack.encrypt_stream ~key words in
  let agree =
    Array.for_all2
      (fun a b -> a = Uas_ir.Types.VInt b)
      cipher reference
  in
  Fmt.pr "matches host implementation: %b@.@." agree;

  (* sweep the paper's ten versions and report the estimates *)
  Fmt.pr "%-12s %6s %8s %6s %10s@." "version" "II" "area" "regs" "cycles";
  let rows =
    N.sweep program ~outer_index:"i" ~inner_index:"j" |> N.successes
  in
  List.iter
    (fun (v, _, (r : Uas_hw.Estimate.report)) ->
      Fmt.pr "%-12s %6d %8d %6d %10d@." (N.version_name v)
        r.Uas_hw.Estimate.r_ii r.Uas_hw.Estimate.r_area_rows
        r.Uas_hw.Estimate.r_registers r.Uas_hw.Estimate.r_total_cycles)
    rows;

  (* kernel selection by speedup/area, as the Nimble flow would do *)
  match N.select_best rows with
  | Some (v, _, _) ->
    Fmt.pr "@.kernel selection picks: %s@." (N.version_name v)
  | None -> Fmt.pr "@.no version selected@."
