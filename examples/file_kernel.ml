(* Kernels from source files: parse a .uas kernel, check it, sweep the
   transformation space, and print the winner — the whole flow on code
   that never touched the OCaml builder DSL.

   Run with:  dune exec examples/file_kernel.exe [FILE]
   (defaults to examples/kernels/rc5ish.uas) *)

open Uas_ir
module N = Uas_core.Nimble

let default_path = "examples/kernels/rc5ish.uas"

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_path in
  let program =
    try Parser.program_of_file path
    with
    | Parser.Parse_error e ->
      Fmt.epr "%s:%d:%d: %s@." path e.line e.col e.msg;
      exit 1
    | Sys_error m ->
      Fmt.epr "%s@." m;
      exit 1
  in
  (match Validate.errors program with
  | [] -> ()
  | errs ->
    Fmt.epr "%a@." (Fmt.list Validate.pp_error) errs;
    exit 1);
  Fmt.pr "parsed %s (%d statements)@." program.Stmt.prog_name
    (Stmt.size program.Stmt.body);

  (* find the nest and report what the analyses see *)
  let nest =
    match Uas_analysis.Loop_nest.find program with
    | n :: _ ->
      Uas_analysis.Loop_nest.find_by_outer_index program
        (List.hd n.Uas_analysis.Loop_nest.levels).Uas_analysis.Loop_nest.l_index
    | [] ->
      Fmt.epr "no loop nest in %s@." path;
      exit 1
  in
  let outer = nest.Uas_analysis.Loop_nest.outer_index in
  let inner = nest.Uas_analysis.Loop_nest.inner_index in
  Fmt.pr "kernel nest: outer %s (%a trips), inner %s (%a trips)@." outer
    Fmt.(option int)
    (Uas_analysis.Loop_nest.outer_trip_count nest)
    inner
    Fmt.(option int)
    (Uas_analysis.Loop_nest.inner_trip_count nest);
  Fmt.pr "legality at DS=4: %a@." Uas_analysis.Legality.pp_verdict
    (Uas_analysis.Legality.check nest ~ds:4);

  (* sweep and report *)
  let rows =
    N.sweep program ~outer_index:outer ~inner_index:inner
      ~versions:
        [ N.Original; N.Pipelined; N.Squashed 2; N.Squashed 4; N.Squashed 8;
          N.Jammed 2; N.Jammed 4; N.Combined (2, 2) ]
    |> N.successes
  in
  Fmt.pr "@.%-18s %6s %8s %6s@." "version" "II" "area" "regs";
  List.iter
    (fun (v, _, (r : Uas_hw.Estimate.report)) ->
      Fmt.pr "%-18s %6d %8d %6d@." (N.version_name v) r.Uas_hw.Estimate.r_ii
        r.Uas_hw.Estimate.r_area_rows r.Uas_hw.Estimate.r_registers)
    rows;
  match N.select_best rows with
  | Some (v, _, _) -> Fmt.pr "@.best speedup/area: %s@." (N.version_name v)
  | None -> ()
