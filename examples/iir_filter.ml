(* Multi-channel IIR filtering: the floating-point benchmark of §6.2.
   Shows why unroll-and-squash shines on long FP recurrences — the
   efficiency keeps growing with the unroll factor (the Figure 6.3
   discussion) — and that the squashed filter bank is still a correct
   software filter.

   Run with:  dune exec examples/iir_filter.exe *)

module S = Uas_bench_suite
module N = Uas_core.Nimble

let () =
  let channels = 16 in
  (* a noisy multi-channel signal: channel c carries a tone at a
     c-dependent frequency plus deterministic "noise" *)
  let signal =
    Array.init
      (channels * S.Iir.points_per_channel)
      (fun k ->
        let c = k / S.Iir.points_per_channel in
        let t = float_of_int (k mod S.Iir.points_per_channel) in
        sin (t *. (0.1 +. (0.02 *. float_of_int c)))
        +. (0.25 *. sin (t *. 2.9)))
  in
  let program = S.Iir.iir ~channels in
  let workload = S.Iir.workload signal in

  (* filter through the original and through squash(8); identical
     bit-for-bit because the transformation only reorders independent
     channels *)
  let nest = Uas_analysis.Loop_nest.find_by_outer_index program "i" in
  let squashed = Uas_transform.Squash.apply program nest ~ds:8 in
  let r0 = Uas_ir.Interp.run program workload in
  let r1 = Uas_ir.Interp.run squashed.Uas_transform.Squash.program workload in
  Fmt.pr "squash(8) output identical: %b@."
    (Uas_ir.Interp.outputs_equal r0 r1);

  (* show a few filtered samples *)
  let out = List.assoc "signal_out" r0.Uas_ir.Interp.outputs in
  Fmt.pr "channel 0, first 6 samples:";
  for k = 0 to 5 do
    match out.(k) with
    | Uas_ir.Types.VFloat x -> Fmt.pr " %+.4f" x
    | _ -> ()
  done;
  Fmt.pr "@.@.";

  (* the FP recurrence: pipelining alone is limited by the biquad
     feedback loop; squash divides it across data sets *)
  let rows =
    N.sweep program ~outer_index:"i" ~inner_index:"j" |> N.successes
  in
  Fmt.pr "%-12s %6s %8s %12s@." "version" "II" "area" "speedup/area";
  let orig_cycles =
    List.find_map
      (fun (v, _, r) ->
        if v = N.Original then Some r.Uas_hw.Estimate.r_total_cycles else None)
      rows
    |> Option.get
  in
  let orig_area =
    List.find_map
      (fun (v, _, r) ->
        if v = N.Original then Some r.Uas_hw.Estimate.r_area_rows else None)
      rows
    |> Option.get
  in
  List.iter
    (fun (v, _, (r : Uas_hw.Estimate.report)) ->
      let speedup =
        float_of_int orig_cycles /. float_of_int r.Uas_hw.Estimate.r_total_cycles
      in
      let area =
        float_of_int r.Uas_hw.Estimate.r_area_rows /. float_of_int orig_area
      in
      Fmt.pr "%-12s %6d %8d %12.2f@." (N.version_name v)
        r.Uas_hw.Estimate.r_ii r.Uas_hw.Estimate.r_area_rows (speedup /. area))
    rows
