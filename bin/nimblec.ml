(* nimblec — a command-line front door to the unroll-and-squash flow,
   in the spirit of the Nimble Compiler driver (§5.2).

     nimblec list                        benchmarks and their kernels
     nimblec show skipjack-hw -v squash:4    print a transformed program
     nimblec estimate des-mem            Table 6.2 row for one benchmark
     nimblec run iir -v jam:2            execute + verify vs host reference
     nimblec dfg skipjack-hw             dump the kernel DFG
     nimblec profile                     the Table 1.1 study *)

open Cmdliner
module S = Uas_bench_suite
module N = Uas_core.Nimble
module E = Uas_core.Experiments
module P = Uas_core.Planner
module Cu = Uas_pass.Cu
module Diag = Uas_pass.Diag
module Rewrite = Uas_transform.Rewrite
module Parallel = Uas_runtime.Parallel
module Fault = Uas_runtime.Fault

(* A runtime configuration problem (malformed UAS_JOBS / UAS_FAULT /
   --fault) exits with a structured diagnostic, never a backtrace. *)
let runtime_error fmt =
  Format.kasprintf
    (fun msg ->
      Fmt.epr "nimblec: %a@." Diag.pp (Diag.errorf ~pass:"runtime" "%s" msg);
      exit 1)
    fmt

(* --fault PLAN arms the injection registry for this invocation; the
   plan is validated here so a typo is a diagnostic, not a surprise. *)
let arm_fault = function
  | None -> ()
  | Some plan -> (
    match Fault.arm plan with
    | Ok () -> ()
    | Error m -> runtime_error "--fault: %s" m)

(* --cache DIR (or UAS_CACHE) opens and installs the persistent
   artifact store before the command body runs; an unopenable
   directory is a structured diagnostic, not a backtrace. *)
let init_cache cache verify =
  (match cache with
  | None -> ()
  | Some dir -> (
    match Uas_runtime.Store.open_dir dir with
    | Ok s -> Uas_runtime.Store.install s
    | Error m -> runtime_error "--cache: %s" m));
  if verify then Uas_runtime.Store.set_verify true

(* After a store-consulting command: the hit-rate line, on stderr so
   the table output stays byte-identical with and without a cache. *)
let report_store_stats () =
  match Uas_runtime.Store.installed () with
  | Some s -> Fmt.epr "%a@." Uas_runtime.Store.pp_stats s
  | None -> ()

let find_benchmark name =
  match S.Registry.find name with
  | Some b -> b
  | None ->
    Fmt.epr "unknown benchmark %s; try `nimblec list'@." name;
    exit 2

(* A transformation rejected at the requested factor exits with its
   structured diagnostic, not an OCaml backtrace. *)
let build_or_exit ?after (p : Uas_ir.Stmt.program) ~outer_index ~inner_index
    version =
  match N.build_version_result ?after p ~outer_index ~inner_index version with
  | Ok built -> built
  | Error d ->
    Fmt.epr "nimblec: %a@." Diag.pp d;
    exit 1

(* --dump-after PASS: print the program (or the DFG, for the graph
   stages) as it stands after the named pipeline pass. *)

let dump_hook which ~pass cu =
  if String.equal pass which then
    match pass with
    | "dfg-build" | "schedule" -> (
      match Cu.dfg cu with
      | Some d ->
        Fmt.pr "// after pass %s (kernel %s)@.%s@." pass (Cu.inner_index cu)
          (Uas_dfg.Dot.to_dot ~name:pass d.Uas_dfg.Build.d_graph)
      | None -> ())
    | _ ->
      Fmt.pr "// after pass %s@.%a@." pass Uas_ir.Pp.pp_program
        (Cu.program cu)

let dump_after_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:
          "Print the IR after the named pipeline pass (DOT via Graphviz \
           for the graph stages dfg-build/schedule).  Accepts the stage \
           passes (loop-nest, legality, dfg-build, schedule, estimate) \
           and every registered rewrite name (squash, jam, interchange, \
           ...).")

(* Every name --dump-after accepts: the stage passes plus the rewrite
   registry. *)
let dumpable_passes () = Uas_pass.Stages.names @ Rewrite.names ()

(* The validated hook: [None] when not dumping. *)
let dump_hook_of = function
  | None -> None
  | Some pass when List.mem pass (dumpable_passes ()) ->
    Some (dump_hook pass)
  | Some pass ->
    Fmt.epr "unknown pass %s; passes: %s@." pass
      (String.concat ", " (dumpable_passes ()));
    exit 1

let parse_version s =
  let fail () =
    Fmt.epr
      "bad version %s (expected original | pipelined | squash:N | jam:N | \
       jam:J+squash:K | flatten+squash:N)@."
      s;
    exit 2
  in
  match String.lowercase_ascii s with
  | "original" -> N.Original
  | "pipelined" -> N.Pipelined
  | s -> (
    match String.split_on_char '+' s with
    | [ one ] -> (
      match String.split_on_char ':' one with
      | [ "squash"; n ] -> (
        match int_of_string_opt n with
        | Some n -> N.Squashed n
        | None -> fail ())
      | [ "jam"; n ] -> (
        match int_of_string_opt n with Some n -> N.Jammed n | None -> fail ())
      | _ -> fail ())
    | [ jam_part; squash_part ] -> (
      match
        ( String.split_on_char ':' jam_part,
          String.split_on_char ':' squash_part )
      with
      | [ "jam"; j ], [ "squash"; k ] -> (
        match (int_of_string_opt j, int_of_string_opt k) with
        | Some j, Some k -> N.Combined (j, k)
        | _ -> fail ())
      | [ "flatten" ], [ "squash"; k ] -> (
        match int_of_string_opt k with
        | Some k -> N.Flat_squashed k
        | None -> fail ())
      | _ -> fail ())
    | _ -> fail ())

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker-pool size for the version sweep (default: \
              $(b,UAS_JOBS) or the core count; 1 = sequential)")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Record per-pass wall-clock spans and counters and print the \
              summary table at the end")

(* [-v] only: subcommands inherit the group's [--version] from
   Cmdliner, and a second long option of the same name is a hard
   Invalid_argument at eval time *)
let version_arg =
  Arg.(
    value
    & opt string "original"
    & info [ "v" ] ~docv:"VERSION"
        ~doc:
          "original | pipelined | squash:N | jam:N | jam:J+squash:K | \
           flatten+squash:N (the deep-nest route)")

let validate_arg =
  let mode_conv = Arg.enum [ ("off", false); ("probe", true) ] in
  Arg.(
    value
    & opt mode_conv false
    & info [ "validate" ] ~docv:"MODE"
        ~doc:
          "Translation validation of every rewrite: $(b,off) (the \
           default) or $(b,probe) (replay the benchmark workload on \
           both interpreter tiers after each rewrite; a miscompiling \
           rewrite degrades its cell to the last-known-good program \
           instead of propagating a wrong one)")

let exact_arg =
  let mode_conv =
    Arg.enum
      [ ("off", Uas_dfg.Sched.Exact_off);
        ("check", Uas_dfg.Sched.Exact_check);
        ("report", Uas_dfg.Sched.Exact_report) ]
  in
  Arg.(
    value
    & opt mode_conv Uas_dfg.Sched.Exact_off
    & info [ "exact-ii" ] ~docv:"MODE"
        ~doc:
          "Second II oracle per cell: $(b,off) (the default), \
           $(b,check) (validate every heuristic schedule against the \
           raw constraint system), or $(b,report) (also certify the \
           optimal II of pipelined cells by exact branch-and-bound and \
           footnote the heuristic-vs-optimal gap)")

let task_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECS"
        ~doc:
          "Per-task wall-clock budget for the worker pool; an \
           overrunning task is marked timed out and its cell skipped \
           instead of hanging the sweep")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget for retryable (injected-fault) task failures")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Arm the deterministic fault-injection registry (testing; \
           same grammar as $(b,UAS_FAULT): site[=label]:kind:nth,...)")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~env:(Cmd.Env.info Uas_runtime.Store.env_var)
        ~doc:
          "Persistent content-addressed artifact store: schedules, \
           exact-II certificates, hardware estimates and planner rows \
           are looked up here before being recomputed (see \
           docs/CACHING.md)")

let cache_verify_arg =
  Arg.(
    value & flag
    & info [ "cache-verify" ]
        ~doc:
          "Recompute every artifact and compare it against the cached \
           copy; a mismatch is an incident and the entry is replaced")

(* --task-timeout / --retries bounds checked once, up front, through
   the shared validator (Uas_runtime.Budget) — same ranges and the
   same diagnostic as bench/main.exe and nimbled *)
let check_supervision timeout_s retries =
  (match timeout_s with
  | Some t -> (
    match Uas_runtime.Budget.check_timeout ~flag:"--task-timeout" t with
    | Ok _ -> ()
    | Error m -> runtime_error "%s" m)
  | None -> ());
  match retries with
  | Some n -> (
    match Uas_runtime.Budget.check_retries ~flag:"--retries" n with
    | Ok _ -> ()
    | Error m -> runtime_error "%s" m)
  | None -> ()

(* --server ADDR: serve the request from a nimbled daemon.  When the
   daemon is unreachable (bounded retries with exponential backoff and
   deterministic jitter exhausted) or rejects the request, nimblec
   falls back to local in-process compilation with an incident
   footnote on stderr — the stdout bytes are identical either way. *)
let server_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "server" ] ~docv:"ADDR"
        ~doc:
          "Unix-domain socket of a $(b,nimbled) daemon to serve this \
           request; unreachable or failing daemons degrade to local \
           in-process compilation with an incident footnote (see \
           docs/SERVICE.md)")

(* The incident footnote: stderr only, so stdout stays byte-identical
   to the daemon-served output. *)
let service_incident addr msg =
  Fmt.epr "nimblec: %a@." Diag.pp
    (Diag.errorf ~pass:"service"
       "daemon at %s unavailable (%s); falling back to local compilation"
       addr msg)

(* Serve one work request from the daemon, or run [local] as the
   degraded path. *)
let serve_or_local ~addr work ~local =
  match Uas_service.Client.serve_work addr work with
  | Uas_service.Client.Served payload -> print_string payload
  | Uas_service.Client.Rejected m | Uas_service.Client.Unreachable m ->
    service_incident addr m;
    local ()

let interp_arg =
  let tier_conv =
    let parse s =
      match Uas_ir.Fast_interp.tier_of_string s with
      | Some t -> Ok t
      | None ->
        Error
          (`Msg
            (Printf.sprintf "expected %s, got %s"
               Uas_ir.Fast_interp.valid_tiers s))
    in
    let print ppf t = Fmt.string ppf (Uas_ir.Fast_interp.tier_name t) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some tier_conv) None
    & info [ "interp" ] ~docv:"TIER"
        ~doc:
          "Interpreter tier: $(b,ref) (the tree-walking reference), \
           $(b,fast) (slot-compiled; the default) or $(b,native) (JIT: \
           compiled to machine code via ocamlopt + Dynlink, degrading to \
           $(b,fast) if no toolchain is available).  All produce \
           bit-identical results and profiles.")

(* the flag sets the process-wide default, so every execution path —
   verification, profiling, direct runs — follows it *)
let set_interp = function
  | Some tier -> Uas_ir.Fast_interp.set_default_tier tier
  | None -> ()

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (b : S.Registry.benchmark) ->
        Fmt.pr "%-14s kernel: outer %s / inner %s — %s@." b.S.Registry.b_name
          b.S.Registry.b_outer_index b.S.Registry.b_inner_index
          b.S.Registry.b_description)
      (S.Registry.all () @ S.Registry.extras ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the Table 6.1 benchmarks and the extras")
    Term.(const run $ const ())

(* --- show --- *)

let show_cmd =
  let run name version dump_after =
    let b = find_benchmark name in
    let built =
      build_or_exit ?after:(dump_hook_of dump_after) b.S.Registry.b_program
        ~outer_index:b.S.Registry.b_outer_index
        ~inner_index:b.S.Registry.b_inner_index (parse_version version)
    in
    Fmt.pr "%a@." Uas_ir.Pp.pp_program built.N.bv_program
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the (transformed) program of a benchmark")
    Term.(const run $ bench_arg $ version_arg $ dump_after_arg)

(* --- estimate --- *)

let estimate_cmd =
  let run name verify jobs timings dump_after interp validate exact timeout_s
      retries fault cache cache_verify server =
    set_interp interp;
    check_supervision timeout_s retries;
    arm_fault fault;
    let local () =
      init_cache cache cache_verify;
      if timings then Uas_runtime.Instrument.set_enabled true;
      let b = find_benchmark name in
      let after = dump_hook_of dump_after in
      (* dumping from pool domains would interleave: force sequential *)
      let jobs = if Option.is_some after then Some 1 else jobs in
      let row =
        E.run_benchmark ~verify ~validate ~exact ?jobs ?timeout_s ?retries
          ?after b
      in
      Fmt.pr "%a@." E.pp_table_6_2 [ row ];
      Fmt.pr "%a@." E.pp_table_6_3 [ row ];
      if timings then Fmt.pr "%a" Uas_runtime.Instrument.pp_summary ();
      report_store_stats ()
    in
    match server with
    | None -> local ()
    | Some addr ->
      serve_or_local ~addr
        (Uas_service.Handler.W_estimate
           { Uas_service.Handler.e_bench = name;
             e_verify = verify;
             e_tier = interp;
             e_validate = validate;
             e_exact = exact;
             e_budget_s = None })
        ~local
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Replay every version in the interpreter against the host \
                reference (slower)")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate all paper versions of a benchmark (Table 6.2/6.3 rows)")
    Term.(
      const run $ bench_arg $ verify $ jobs_arg $ timings_arg
      $ dump_after_arg $ interp_arg $ validate_arg $ exact_arg
      $ task_timeout_arg $ retries_arg $ fault_arg $ cache_arg
      $ cache_verify_arg $ server_arg)

(* --- run --- *)

let run_cmd =
  let run name version interp =
    set_interp interp;
    let tier = Uas_ir.Fast_interp.default_tier () in
    let b = find_benchmark name in
    let built =
      build_or_exit b.S.Registry.b_program
        ~outer_index:b.S.Registry.b_outer_index
        ~inner_index:b.S.Registry.b_inner_index (parse_version version)
    in
    let t0 = Unix.gettimeofday () in
    let result =
      S.Registry.run_tier tier built.N.bv_program b.S.Registry.b_workload
    in
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr
      "executed %d statements in %.3fs on the %s tier (estimated %d kernel \
       cycles)@."
      result.Uas_ir.Interp.profile.Uas_ir.Interp.stmts_executed dt
      (Uas_ir.Fast_interp.tier_name tier)
      result.Uas_ir.Interp.profile.Uas_ir.Interp.total_cycles;
    match S.Registry.check_result b result with
    | Ok () -> Fmt.pr "outputs match the host reference: yes@."
    | Error m ->
      Fmt.pr "outputs match the host reference: NO (%s)@." m;
      exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a (transformed) benchmark and verify its outputs")
    Term.(const run $ bench_arg $ version_arg $ interp_arg)

(* --- dfg --- *)

let dfg_cmd =
  let run name dot_path =
    let b = find_benchmark name in
    let nest =
      Uas_analysis.Loop_nest.find_by_outer_index b.S.Registry.b_program
        b.S.Registry.b_outer_index
    in
    let g, _ =
      Uas_dfg.Build.build ~inner_index:b.S.Registry.b_inner_index
        nest.Uas_analysis.Loop_nest.inner_body
    in
    (match dot_path with
    | Some path ->
      Uas_dfg.Dot.write_file ~name:b.S.Registry.b_name g ~path;
      Fmt.pr "wrote %s@." path
    | None -> Fmt.pr "%a@." Uas_dfg.Graph.pp g);
    Fmt.pr "RecMII=%d ResMII=%d critical-path=%d@."
      (Uas_dfg.Graph.recurrence_mii g)
      (Uas_dfg.Sched.resource_mii Uas_dfg.Sched.default_config g)
      (Uas_dfg.Graph.critical_path g)
  in
  let dot_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write a Graphviz rendering to FILE")
  in
  Cmd.v
    (Cmd.info "dfg" ~doc:"Dump the kernel data-flow graph of a benchmark")
    Term.(const run $ bench_arg $ dot_path)

(* --- export: emit C for a (transformed) benchmark --- *)

let export_cmd =
  let run name version path =
    let b = find_benchmark name in
    let built =
      build_or_exit b.S.Registry.b_program
        ~outer_index:b.S.Registry.b_outer_index
        ~inner_index:b.S.Registry.b_inner_index (parse_version version)
    in
    Uas_ir.C_export.write_standalone built.N.bv_program
      ~workload:b.S.Registry.b_workload ~path;
    Fmt.pr "wrote %s (compile with `cc %s && ./a.out`)@." path path
  in
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT.c")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Emit a standalone C program for a (transformed) benchmark, \
             with its reference workload baked in")
    Term.(const run $ bench_arg $ version_arg $ path)

(* --- compile: transform a kernel from a source file --- *)

let compile_cmd =
  (* the addressable-nest catalog of the file, for the
     no-such-nest diagnostics: every loop index that can head a nest,
     with the depth of the nest it heads *)
  let pp_available ppf p =
    match Uas_analysis.Loop_nest.summary p with
    | [] -> Fmt.pf ppf "the file contains no loop nest"
    | entries ->
      Fmt.pf ppf "available nests:";
      List.iter
        (fun (idx, d) -> Fmt.pf ppf "@.  %s (depth %d)" idx d)
        entries
  in
  let run path target version estimate_flag dump_after =
    let p =
      try Uas_ir.Parser.program_of_file path
      with Uas_ir.Parser.Parse_error e ->
        Fmt.epr "%s:%d:%d: %s@." path e.line e.col e.msg;
        exit 1
    in
    (match Uas_ir.Validate.errors p with
    | [] -> ()
    | errs ->
      Fmt.epr "%a@." (Fmt.list Uas_ir.Validate.pp_error) errs;
      exit 1);
    let innermost_index (nest : Uas_analysis.Loop_nest.t) =
      (List.nth nest.Uas_analysis.Loop_nest.levels
         (Uas_analysis.Loop_nest.depth nest - 1))
        .Uas_analysis.Loop_nest.l_index
    in
    let outer, inner =
      match target with
      | Some idx -> (
        match Uas_analysis.Loop_nest.find_nest_opt p idx with
        | Some nest -> (idx, innermost_index nest)
        | None ->
          Fmt.epr "no loop nest with outer index %s in %s; %a@." idx path
            pp_available p;
          exit 1)
      | None -> (
        match Uas_analysis.Loop_nest.find p with
        | nest :: _ ->
          ( (List.hd nest.Uas_analysis.Loop_nest.levels)
              .Uas_analysis.Loop_nest.l_index,
            innermost_index nest )
        | [] ->
          Fmt.epr "no loop nest found in %s@." path;
          exit 1)
    in
    let built =
      build_or_exit ?after:(dump_hook_of dump_after) p ~outer_index:outer
        ~inner_index:inner (parse_version version)
    in
    Fmt.pr "%a@." Uas_ir.Pp.pp_program built.N.bv_program;
    if estimate_flag then begin
      let r = N.estimate built in
      Fmt.pr "// %a@." Uas_hw.Estimate.pp_report r
    end
  in
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let target_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"INDEX"
          ~doc:
            "Outer loop index of the nest to transform (default: the \
             first nest in the file).  An index heading no nest exits \
             with the catalog of available nests and their depths.")
  in
  let estimate_flag =
    Arg.(value & flag & info [ "estimate" ] ~doc:"Also print the hardware estimate")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Parse a kernel source file, transform a loop nest (the first, \
             or the one named by $(b,--target)), print the result")
    Term.(
      const run $ path $ target_arg $ version_arg $ estimate_flag
      $ dump_after_arg)

(* --- plan --- *)

let objective_arg =
  let objective_conv =
    let parse s =
      match P.objective_of_string s with
      | Some o -> Ok o
      | None ->
        Error (`Msg (Printf.sprintf "expected ii, area or ratio, got %s" s))
    in
    let print ppf o = Fmt.string ppf (P.objective_name o) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt objective_conv P.Ratio
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:
          "Ranking objective: $(b,ii) (kernel initiation interval), \
           $(b,area) (area rows), or $(b,ratio) (speedup per area, the \
           Figure 6.3 efficiency metric; the default)")

let plan_benchmark ?jobs ?(validate = false) ?exact ?timeout_s ?retries
    ~objective (b : S.Registry.benchmark) =
  let probe = if validate then Some b.S.Registry.b_workload else None in
  let plan =
    P.plan ?jobs ~objective ?validate:probe ?exact ?timeout_s ?retries
      b.S.Registry.b_program ~outer_index:b.S.Registry.b_outer_index
      ~inner_index:b.S.Registry.b_inner_index ~benchmark:b.S.Registry.b_name
  in
  Fmt.pr "%a@." P.pp plan

let plan_cmd =
  let run name objective jobs validate exact timeout_s retries fault cache
      cache_verify server =
    check_supervision timeout_s retries;
    arm_fault fault;
    let cache_ready = ref false in
    let local_cache () =
      if not !cache_ready then begin
        cache_ready := true;
        init_cache cache cache_verify
      end
    in
    (* one request (or local fallback) per benchmark, so a daemon that
       fails mid-list degrades only the affected benchmark *)
    let plan_one b =
      let local () =
        local_cache ();
        plan_benchmark ?jobs ~validate ~exact ?timeout_s ?retries ~objective b
      in
      match server with
      | None -> local ()
      | Some addr ->
        serve_or_local ~addr
          (Uas_service.Handler.W_plan
             { Uas_service.Handler.p_bench = b.S.Registry.b_name;
               p_objective = objective;
               p_validate = validate;
               p_exact = exact;
               p_budget_s = None })
          ~local
    in
    (match name with
    | Some name -> plan_one (find_benchmark name)
    | None -> List.iter plan_one (S.Registry.all () @ S.Registry.extras ()));
    if !cache_ready then report_store_stats ()
  in
  let bench_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Rank rewrite sequences ending in squash by the cost model \
             (all benchmarks when none is named)")
    Term.(
      const run $ bench_opt $ objective_arg $ jobs_arg $ validate_arg
      $ exact_arg $ task_timeout_arg $ retries_arg $ fault_arg $ cache_arg
      $ cache_verify_arg $ server_arg)

(* --- daemon: control verbs against a nimbled instance --- *)

let daemon_cmd =
  let run action server attempts =
    let addr =
      match server with
      | Some addr -> addr
      | None -> runtime_error "daemon %s requires --server ADDR" action
    in
    let request =
      match action with
      | "hello" -> Uas_service.Handler.Hello "nimblec"
      | "health" -> Uas_service.Handler.Health
      | "stats" -> Uas_service.Handler.Stats
      | "drain" -> Uas_service.Handler.Drain
      | other ->
        runtime_error "unknown daemon action %s (hello|health|stats|drain)"
          other
    in
    match
      Uas_service.Client.call ?attempts addr
        (Uas_service.Handler.to_frame request)
    with
    | Uas_service.Client.Served payload -> Fmt.pr "%s@." payload
    | Uas_service.Client.Rejected m ->
      Fmt.epr "nimblec: daemon at %s rejected %s: %s@." addr action m;
      exit 1
    | Uas_service.Client.Unreachable m ->
      Fmt.epr "nimblec: daemon at %s unreachable: %s@." addr m;
      exit 1
  in
  let action_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ACTION")
  in
  let attempts_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Connection attempts before giving up (default 4)")
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Control a nimbled daemon: $(b,hello) (handshake), $(b,health), \
          $(b,stats) (the v7 daemon counters + store), or $(b,drain) \
          (graceful shutdown; returns once in-flight work finishes)")
    Term.(const run $ action_arg $ server_arg $ attempts_arg)

(* --- profile --- *)

let profile_cmd =
  let run interp =
    set_interp interp;
    Fmt.pr "%-28s %8s %12s %9s@." "benchmark" "# loops" "# loops>1%" "total %";
    List.iter
      (fun (r : S.Profile.row) ->
        Fmt.pr "%-28s %8d %12d %8.0f%%@." r.S.Profile.row_app
          r.S.Profile.loops r.S.Profile.hot_loops r.S.Profile.hot_percent)
      (S.Profile.table ())
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Run the Table 1.1 loop-profiling study")
    Term.(const run $ interp_arg)

(* `nimblec --plan` at the top level plans every registry benchmark —
   the one-shot planner entry; without it, the group prints its help. *)
let default_term =
  let run plan_flag objective jobs validate exact timeout_s retries fault
      cache cache_verify =
    if plan_flag then begin
      check_supervision timeout_s retries;
      arm_fault fault;
      init_cache cache cache_verify;
      List.iter
        (plan_benchmark ?jobs ~validate ~exact ?timeout_s ?retries ~objective)
        (S.Registry.all () @ S.Registry.extras ());
      report_store_stats ();
      `Ok ()
    end
    else `Help (`Pager, None)
  in
  let plan_flag =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:"Rank rewrite sequences ending in squash by the cost model, \
                for every benchmark (see also the $(b,plan) subcommand)")
  in
  Term.(
    ret
      (const run $ plan_flag $ objective_arg $ jobs_arg $ validate_arg
      $ exact_arg $ task_timeout_arg $ retries_arg $ fault_arg $ cache_arg
      $ cache_verify_arg))

let () =
  (* a malformed UAS_JOBS, UAS_FAULT or UAS_INTERP is a diagnostic up
     front, not an Invalid_argument backtrace out of the first pool
     dispatch (or a silent tier fallback) *)
  (match Parallel.default_jobs_result () with
  | Ok _ -> ()
  | Error m -> runtime_error "%s" m);
  (match Fault.env_error () with
  | None -> ()
  | Some m -> runtime_error "%s: %s" Fault.env_var m);
  (match Uas_ir.Fast_interp.env_tier_error () with
  | None -> ()
  | Some m -> runtime_error "%s" m);
  let version =
    (* the toolchain fingerprint probe forks a subprocess; only pay for
       it when the version is actually being printed *)
    if Array.exists (String.equal "--version") Sys.argv then
      Uas_runtime.Build_info.version_string ^ "\n"
      ^ Uas_runtime.Build_info.jit_version_line ()
    else Uas_runtime.Build_info.version_string
  in
  let info =
    Cmd.info "nimblec" ~version ~doc:"Unroll-and-squash loop pipelining flow"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_term info
          [ list_cmd; show_cmd; estimate_cmd; run_cmd; dfg_cmd; plan_cmd;
            profile_cmd; compile_cmd; export_cmd; daemon_cmd ]))
