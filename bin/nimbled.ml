(* nimbled — the fault-tolerant compilation daemon.  Serves
   sweep/plan/estimate requests from nimblec --server clients over a
   Unix-domain socket, with bounded admission, per-request wall
   budgets, per-connection fault isolation, graceful drain on
   SIGTERM/DRAIN and crash recovery on restart (docs/SERVICE.md).

     nimbled --socket /tmp/nimbled.sock --cache /tmp/store --queue 16 *)

open Cmdliner
module Diag = Uas_pass.Diag
module Fault = Uas_runtime.Fault
module Store = Uas_runtime.Store
module Budget = Uas_runtime.Budget
module Parallel = Uas_runtime.Parallel
module Trajectory = Uas_runtime.Trajectory
module Handler = Uas_service.Handler
module Server = Uas_service.Server
module Protocol = Uas_service.Protocol

let log m = Printf.eprintf "nimbled: %s\n%!" m

(* Startup problems are structured diagnostics, never backtraces. *)
let startup_error fmt =
  Format.kasprintf
    (fun msg ->
      Fmt.epr "nimbled: %a@." Diag.pp (Diag.errorf ~pass:"service" "%s" msg);
      exit 1)
    fmt

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (required)")

let pidfile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pidfile" ] ~docv:"PATH"
        ~doc:
          "Write the daemon pid here; a stale pidfile from a killed \
           daemon is detected (the pid no longer runs) and removed on \
           restart")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~env:(Cmd.Env.info Store.env_var)
        ~doc:
          "Persistent artifact store shared across requests (and, via \
           the store's file lock, across processes); reopened and \
           verified on restart")

let cache_verify_arg =
  Arg.(
    value & flag
    & info [ "cache-verify" ]
        ~doc:"Recompute every artifact and compare against the cached copy")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker-pool size for each request's sweep (default: \
              $(b,UAS_JOBS) or the core count)")

let queue_arg =
  Arg.(
    value & opt int 16
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission bound: at most N work requests wait; beyond it \
           requests are shed with $(b,BUSY) + retry-after, never a \
           silent hang")

let task_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECS"
        ~doc:
          "Per-cell wall budget inside each request's worker pool (the \
           supervised-pool watchdog)")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:"Retry budget for retryable task failures inside requests")

let request_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "request-budget" ] ~docv:"SECS"
        ~doc:
          "Default per-request wall budget: an overrunning request is \
           answered $(b,ERR) (timed out) and abandoned; a request's own \
           $(b,budget=) key overrides this")

let drain_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "drain-timeout" ] ~docv:"SECS"
        ~doc:
          "How long a drain waits for in-flight and queued work before \
           abandoning the remainder")

let interp_arg =
  let tier_conv =
    let parse s =
      match Uas_ir.Fast_interp.tier_of_string s with
      | Some t -> Ok t
      | None ->
        Error
          (`Msg
            (Printf.sprintf "expected %s, got %s"
               Uas_ir.Fast_interp.valid_tiers s))
    in
    let print ppf t = Fmt.string ppf (Uas_ir.Fast_interp.tier_name t) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some tier_conv) None
    & info [ "interp" ] ~docv:"TIER"
        ~doc:
          "Default interpreter tier for requests that do not name one: \
           $(b,ref), $(b,fast) or $(b,native)")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Arm the deterministic fault-injection registry (testing; \
           same grammar as $(b,UAS_FAULT)); the service sites are \
           $(b,service.accept), $(b,service.request), $(b,service.reply)")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "On drain, write a trajectory document (schema v7) whose \
           $(b,daemon) object carries the service counters")

let max_frame_arg =
  Arg.(
    value
    & opt int Uas_service.Protocol.default_max_frame
    & info [ "max-frame" ] ~docv:"BYTES"
        ~doc:
          "Largest accepted request body; an oversized frame costs its \
           sender a typed $(b,ERR) and the connection")

let serve socket pidfile cache cache_verify jobs queue timeout_s retries
    request_budget drain_timeout interp fault json max_frame =
  (* malformed environment or flags are diagnostics up front *)
  (match Parallel.default_jobs_result () with
  | Ok _ -> ()
  | Error m -> startup_error "%s" m);
  (match Fault.env_error () with
  | None -> ()
  | Some m -> startup_error "%s: %s" Fault.env_var m);
  (match Uas_ir.Fast_interp.env_tier_error () with
  | None -> ()
  | Some m -> startup_error "%s" m);
  (match timeout_s with
  | Some t -> (
    match Budget.check_timeout ~flag:"--task-timeout" t with
    | Ok _ -> ()
    | Error m -> startup_error "%s" m)
  | None -> ());
  (match retries with
  | Some n -> (
    match Budget.check_retries ~flag:"--retries" n with
    | Ok _ -> ()
    | Error m -> startup_error "%s" m)
  | None -> ());
  (match request_budget with
  | Some b -> (
    match Budget.check_timeout ~flag:"--request-budget" b with
    | Ok _ -> ()
    | Error m -> startup_error "%s" m)
  | None -> ());
  (match Budget.check_timeout ~flag:"--drain-timeout" drain_timeout with
  | Ok _ -> ()
  | Error m -> startup_error "%s" m);
  if queue < 1 then
    startup_error "--queue %d is out of range; expected a positive integer"
      queue;
  if max_frame < 1024 then
    startup_error "--max-frame %d is out of range; expected at least 1024"
      max_frame;
  (match interp with
  | Some tier -> Uas_ir.Fast_interp.set_default_tier tier
  | None -> ());
  (match fault with
  | None -> ()
  | Some plan -> (
    match Fault.arm plan with
    | Ok () -> ()
    | Error m -> startup_error "--fault: %s" m));
  (* reopen and verify the store before admitting anyone: a restart
     after SIGKILL must prove the cache survived *)
  (match cache with
  | None -> ()
  | Some dir -> (
    match Store.open_dir dir with
    | Error m -> startup_error "--cache: %s" m
    | Ok s ->
      Store.install s;
      let objects, bytes = Store.scan s in
      log
        (Printf.sprintf "store reopened: %d object(s), %d bytes verified"
           objects bytes)));
  if cache_verify then Store.set_verify true;
  let on_drained ~daemon_json =
    match json with
    | None -> ()
    | Some file ->
      let traj =
        Trajectory.make
          ~interp_tier:
            (Uas_ir.Fast_interp.tier_name (Uas_ir.Fast_interp.default_tier ()))
          ~jobs ()
      in
      Trajectory.set_daemon_json traj daemon_json;
      Trajectory.write_file traj file;
      log (Printf.sprintf "wrote %s" file)
  in
  let cfg =
    { Server.c_socket = socket;
      c_pidfile = pidfile;
      c_queue_depth = queue;
      c_limits =
        { Handler.l_jobs = jobs; l_timeout_s = timeout_s;
          l_retries = retries };
      c_request_budget_s = request_budget;
      c_drain_timeout_s = drain_timeout;
      c_max_frame = max_frame;
      c_handle_signals = true;
      c_log = log;
      c_on_drained = on_drained }
  in
  match Server.run cfg with
  | Ok () ->
    log "drained; exiting 0";
    exit 0
  | Error m -> startup_error "%s" m

let () =
  let info =
    Cmd.info "nimbled" ~version:Uas_runtime.Build_info.version_string
      ~doc:"Fault-tolerant unroll-and-squash compilation daemon"
      ~man:
        [ `S Manpage.s_description;
          `P
            "Serves sweep, plan and estimate requests over a \
             Unix-domain socket with bounded admission (overload sheds \
             with BUSY + retry-after), per-request wall budgets, \
             per-connection fault isolation, graceful drain on SIGTERM \
             or a DRAIN frame, and stale socket/pidfile recovery on \
             restart.  See docs/SERVICE.md for the protocol grammar \
             and the degradation matrix." ]
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const serve $ socket_arg $ pidfile_arg $ cache_arg
            $ cache_verify_arg $ jobs_arg $ queue_arg $ task_timeout_arg
            $ retries_arg $ request_budget_arg $ drain_timeout_arg
            $ interp_arg $ fault_arg $ json_arg $ max_frame_arg)))
