(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus Bechamel wall-clock microbenchmarks of the
   compiler passes themselves and two ablations of the hardware model.

   Usage:
     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- table-6.2 figure-6.3 ...
     dune exec bench/main.exe -- -j 4 --timings table-6.2
     dune exec bench/main.exe -- --json BENCH_sweep.json table-6.2 micro
   Targets: table-1.1 table-6.1 table-6.2 table-6.3 figure-2 figure-2.4
            figure-4 figure-6.1 figure-6.2 figure-6.3 figure-6.4
            ablation-ports ablation-registers plan micro
   Flags: -j N (worker-pool size; default UAS_JOBS or the core count),
          --timings (per-pass span/counter summary at exit),
          --interp ref|fast|native (interpreter tier for
          verification/profiling; native JIT-compiles each kernel),
          --json FILE (write the perf-trajectory document there),
          --validate off|probe (translation-validate every rewrite),
          --exact-ii off|check|report (second II oracle: validate the
          heuristic schedules, or also certify the optimal II per cell),
          --task-timeout SECS / --retries N (pool supervision),
          --fault PLAN (arm the fault-injection registry; testing),
          --cache DIR (persistent artifact store; default UAS_CACHE),
          --cache-verify (recompute and compare against cached artifacts),
          --cache-warm (re-run every requested target after the cold pass,
          recording "<target> (warm)" wall-clock),
          --version (print the build version line and exit) *)

open Uas_ir
module S = Uas_bench_suite
module E = Uas_core.Experiments
module N = Uas_core.Nimble
module P = Uas_core.Planner
module Instrument = Uas_runtime.Instrument
module Trajectory = Uas_runtime.Trajectory

let header title = Fmt.pr "@.==== %s ====@." title

(* -j N from the command line; None lets the pool pick UAS_JOBS or the
   core count *)
let jobs : int option ref = ref None

(* the fault-tolerance knobs (--validate / --task-timeout / --retries) *)
let validate : bool ref = ref false
let task_timeout : float option ref = ref None
let retries : int option ref = ref None

(* --exact-ii off|check|report: the second II oracle per sweep cell *)
let exact : Uas_dfg.Sched.exact_mode ref = ref Uas_dfg.Sched.Exact_off

(* the perf-trajectory document of this run (--json); microbenchmarks
   record their estimates here as named metrics *)
let trajectory : Trajectory.t option ref = ref None

let metric ~name ~value ~unit_label =
  match !trajectory with
  | Some t -> Trajectory.add_metric t ~name ~value ~unit_label
  | None -> ()

let incident ~site ~cell ~message =
  match !trajectory with
  | Some t -> Trajectory.add_incident t ~site ~cell ~message
  | None -> ()

(* Table 6.2 is the expensive part (50 transformed programs, each
   replayed in the interpreter); computed once — fanned out over the
   domain pool — and shared.  Degraded cells and skips land in the
   trajectory's incident log. *)
let rows_cache : E.bench_row list option ref = ref None

let rows () =
  match !rows_cache with
  | Some r -> r
  | None ->
    let r =
      E.table_6_2 ~verify:true ~validate:!validate ~exact:!exact ?jobs:!jobs
        ?timeout_s:!task_timeout ?retries:!retries ()
    in
    rows_cache := Some r;
    List.iter
      (fun (row : E.bench_row) ->
        let bench = row.E.br_benchmark.S.Registry.b_name in
        List.iter
          (fun (c : E.cell) ->
            (match (!trajectory, c.E.c_gap) with
            | Some t, Some (hii, e) ->
              let module Sched = Uas_dfg.Sched in
              let optimal =
                match (e.Sched.e_status, e.Sched.e_schedule) with
                | Sched.Exact_optimal, Some w -> Some w.Sched.s_ii
                | _ -> None
              in
              Trajectory.add_gap t
                { Trajectory.g_benchmark = bench;
                  g_version = N.version_name c.E.c_version;
                  g_heuristic_ii = hii;
                  g_optimal_ii = optimal;
                  g_proved_ii = e.Sched.e_proved;
                  g_gap = Option.map (fun o -> hii - o) optimal;
                  g_status = Sched.exact_status_name e.Sched.e_status;
                  g_expansions = e.Sched.e_expansions }
            | _ -> ());
            List.iter
              (fun d ->
                incident ~site:"sweep"
                  ~cell:(bench ^ "/" ^ N.version_name c.E.c_version)
                  ~message:(Uas_pass.Diag.to_string d))
              c.E.c_incidents)
          row.E.br_cells;
        List.iter
          (fun (s : E.skip) ->
            incident ~site:"sweep"
              ~cell:(bench ^ "/" ^ N.version_name s.E.s_version)
              ~message:("skipped: " ^ Uas_pass.Diag.to_string s.E.s_diag))
          row.E.br_skipped)
      r;
    r

(* --- Table 1.1 --- *)

let table_1_1 () =
  header "Table 1.1: program execution time in loops";
  Fmt.pr "%-28s %8s %12s %10s   %s@." "benchmark" "# loops" "# loops>1%"
    "total %" "(paper: loops/hot/%)";
  List.iter
    (fun (r : S.Profile.row) ->
      let pl, ph, pp = r.S.Profile.paper in
      Fmt.pr "%-28s %8d %12d %9.0f%%   (%d/%d/%d%%)@." r.S.Profile.row_app
        r.S.Profile.loops r.S.Profile.hot_loops r.S.Profile.hot_percent pl ph
        pp)
    (S.Profile.table ())

(* --- Table 6.1 --- *)

let table_6_1 () =
  header "Table 6.1: benchmark description";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      Fmt.pr "%-14s %s@." b.S.Registry.b_name b.S.Registry.b_description)
    (S.Registry.all ())

(* --- Figure 2.1-2.3: the motivating example, transformed --- *)

let figure_2 () =
  header "Figure 2.1-2.3: the f/g loop nest, original / jam(2) / squash(2)";
  let p = S.Simple.fg_loop ~m:4 ~n:4 in
  Fmt.pr "--- original (Figure 2.1) ---@.%a@." Pp.pp_program p;
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let jam = Uas_transform.Unroll_and_jam.apply p nest ~ds:2 in
  Fmt.pr "--- unroll-and-jam by 2 (Figure 2.2) ---@.%a@." Pp.pp_program
    jam.Uas_transform.Unroll_and_jam.program;
  let sq = Uas_transform.Squash.apply p nest ~ds:2 in
  Fmt.pr "--- unroll-and-squash by 2 (Figure 2.3) ---@.%a@." Pp.pp_program
    sq.Uas_transform.Squash.program;
  (* the headline claim: same throughput as jam, without doubling ops *)
  let ii q index pipelined =
    (Uas_hw.Estimate.kernel ~pipelined q ~index).Uas_hw.Estimate.r_ii
  in
  Fmt.pr "original:  II=%d (non-pipelined schedule)@." (ii p "j" false);
  Fmt.pr "jam(2):    II=%d, operators x2@."
    (ii jam.Uas_transform.Unroll_and_jam.program "j" true);
  Fmt.pr "squash(2): II=%d, operators unchanged@."
    (ii sq.Uas_transform.Squash.program sq.Uas_transform.Squash.new_inner_index
       true)

(* --- Figure 2.4 --- *)

let figure_2_4 () =
  header "Figure 2.4: operator usage over time (jam vs squash)";
  List.iter
    (fun (name, cells) ->
      Fmt.pr "@.%s@." name;
      let ops =
        List.sort_uniq compare (List.map (fun c -> c.E.u_operator) cells)
      in
      List.iter
        (fun op ->
          Fmt.pr "  %-3s |" op;
          List.iter
            (fun c ->
              if String.equal c.E.u_operator op then
                match c.E.u_data_set with
                | Some d -> Fmt.pr " %d" (d + 1)
                | None -> Fmt.pr " .")
            cells;
          Fmt.pr "@.")
        ops)
    (E.figure_2_4 ~cycles:10)

(* --- Figure 4.1/4.2: DFG build and stage assignment --- *)

let figure_4 () =
  header "Figure 4.1/4.2: DFG of the chapter-4 kernel and its 4 stages";
  let p = S.Simple.ch4_loop ~m:8 ~n:4 in
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let g, _ =
    Uas_dfg.Build.build ~inner_index:"j" nest.Uas_analysis.Loop_nest.inner_body
  in
  Fmt.pr "%a@." Uas_dfg.Graph.pp g;
  Fmt.pr "RecMII=%d  critical path=%d@."
    (Uas_dfg.Graph.recurrence_mii g)
    (Uas_dfg.Graph.critical_path g);
  let slices =
    Uas_dfg.Stage.partition ~stages:4 nest.Uas_analysis.Loop_nest.inner_body
  in
  let costs = Uas_dfg.Stage.stage_costs slices in
  List.iteri
    (fun s slice ->
      Fmt.pr "stage %d (delay %d):@." (s + 1) (List.nth costs s);
      List.iter (fun st -> Fmt.pr "  %s@." (Pp.stmt_to_string st)) slice)
    slices

(* --- Tables 6.2/6.3 and figures 6.1-6.4 --- *)

let table_6_2 () =
  header "Table 6.2";
  Fmt.pr "%a@." E.pp_table_6_2 (rows ())

let table_6_3 () =
  header "Table 6.3";
  Fmt.pr "%a@." E.pp_table_6_3 (rows ())

let figure_6_1 () =
  header "Figure 6.1: speedup factor";
  Fmt.pr "%a@."
    (E.pp_series ~unit_label:"speedup vs original")
    (E.figure_6_1 (rows ()))

let figure_6_2 () =
  header "Figure 6.2: area increase factor";
  Fmt.pr "%a@."
    (E.pp_series ~unit_label:"area vs original")
    (E.figure_6_2 (rows ()))

let figure_6_3 () =
  header "Figure 6.3: efficiency factor (speedup/area) — higher is better";
  Fmt.pr "%a@."
    (E.pp_series ~unit_label:"speedup/area")
    (E.figure_6_3 (rows ()))

let figure_6_4 () =
  header "Figure 6.4: operators as percent of the area";
  Fmt.pr "%a@."
    (E.pp_series ~unit_label:"% of area")
    (E.figure_6_4 (rows ()))

(* --- ablations --- *)

let ablation_ports () =
  header "Ablation: memory ports (II of squash(8) per benchmark)";
  Fmt.pr "%-14s %8s %8s %8s@." "benchmark" "1 port" "2 ports" "4 ports";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let built =
        N.build_version b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index (N.Squashed 8)
      in
      let ii target = (N.estimate ~target built).Uas_hw.Estimate.r_ii in
      Fmt.pr "%-14s %8d %8d %8d@." b.S.Registry.b_name
        (ii Uas_hw.Datapath.single_port)
        (ii Uas_hw.Datapath.default)
        (ii Uas_hw.Datapath.quad_port))
    (S.Registry.all ())

let ablation_registers () =
  header
    "Ablation: packed shift registers (area of squash(16); §6.3 argues the \
     1-row-per-register figures are conservative)";
  Fmt.pr "%-14s %12s %12s@." "benchmark" "1 reg/row" "4 regs/row";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let built =
        N.build_version b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index (N.Squashed 16)
      in
      let area target = (N.estimate ~target built).Uas_hw.Estimate.r_area_rows in
      Fmt.pr "%-14s %12d %12d@." b.S.Registry.b_name
        (area Uas_hw.Datapath.default)
        (area Uas_hw.Datapath.packed_registers))
    (S.Registry.all ())

(* --- the §2 composition: jam to fill the datapath, squash on top --- *)

let combined () =
  header
    "Combined jam+squash (§2: \"quadruples the performance but only \
     doubles the area\")";
  Fmt.pr "%-18s %6s %8s %9s %8s %10s@." "version" "II" "area" "speedup"
    "areaX" "efficiency";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      Fmt.pr "@.%s@." b.S.Registry.b_name;
      let versions =
        [ N.Original; N.Jammed 2; N.Squashed 4; N.Combined (2, 2);
          N.Combined (2, 4); N.Combined (4, 2) ]
      in
      let probe =
        if !validate then Some b.S.Registry.b_workload else None
      in
      let outcomes =
        N.sweep ~versions ?jobs:!jobs ?validate:probe
          ?timeout_s:!task_timeout ?retries:!retries b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index
      in
      let rows = N.successes outcomes in
      let base =
        List.find_map
          (fun (v, _, r) -> if v = N.Original then Some r else None)
          rows
      in
      (match base with
      | None -> ()
      | Some base ->
        List.iter
          (fun (v, _, (r : Uas_hw.Estimate.report)) ->
            let speedup =
              float_of_int base.Uas_hw.Estimate.r_total_cycles
              /. float_of_int r.Uas_hw.Estimate.r_total_cycles
            in
            let area =
              float_of_int r.Uas_hw.Estimate.r_area_rows
              /. float_of_int base.Uas_hw.Estimate.r_area_rows
            in
            Fmt.pr "%-18s %6d %8d %9.2f %8.2f %10.2f@." (N.version_name v)
              r.Uas_hw.Estimate.r_ii r.Uas_hw.Estimate.r_area_rows speedup
              area (speedup /. area))
          rows);
      List.iter
        (fun (v, ds) ->
          List.iter
            (fun d ->
              Fmt.pr "degraded: %-12s — %a@." (N.version_name v)
                Uas_pass.Diag.pp d;
              incident ~site:"combined"
                ~cell:(b.S.Registry.b_name ^ "/" ^ N.version_name v)
                ~message:(Uas_pass.Diag.to_string d))
            ds)
        (N.degraded outcomes);
      List.iter
        (fun (v, d) ->
          Fmt.pr "skipped: %-12s — %a@." (N.version_name v) Uas_pass.Diag.pp d)
        (N.skipped outcomes))
    (S.Registry.all ())

let ablation_width () =
  header
    "Ablation: width-aware operator sizing (the back-end sizing of §5.4; \
     operator rows scaled to inferred bit widths)";
  Fmt.pr "%-14s %12s %12s %8s@." "benchmark" "32-bit rows" "width-aware"
    "ratio";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let nest =
        Uas_analysis.Loop_nest.find_by_outer_index b.S.Registry.b_program
          b.S.Registry.b_outer_index
      in
      let detail =
        Uas_dfg.Build.build_detailed ~inner_index:b.S.Registry.b_inner_index
          nest.Uas_analysis.Loop_nest.inner_body
      in
      let roms =
        List.map
          (fun (r : Uas_ir.Stmt.rom_decl) ->
            (r.Uas_ir.Stmt.r_name, r.Uas_ir.Stmt.r_data))
          b.S.Registry.b_program.Uas_ir.Stmt.roms
      in
      (* back-end knowledge: loop index bounds and 16/32-bit data words *)
      let entry name =
        if String.equal name b.S.Registry.b_inner_index then
          Some { Uas_hw.Bitwidth.lo = 0; hi = 64 }
        else if String.length name >= 1 && name.[0] = 'w' then
          Some { Uas_hw.Bitwidth.lo = 0; hi = 0xffff }
        else None
      in
      let default = Uas_dfg.Graph.total_operator_area detail.Uas_dfg.Build.d_graph in
      let aware = Uas_hw.Bitwidth.width_aware_operator_area ~entry detail ~roms in
      Fmt.pr "%-14s %12d %12d %8.2f@." b.S.Registry.b_name default aware
        (float_of_int aware /. float_of_int default))
    (S.Registry.all ())

(* --- the transform planner: ranked rewrite sequences per benchmark --- *)

let plan_rows_for_trajectory (plan : P.plan) : Trajectory.plan_row list =
  let rank = ref 0 in
  List.map
    (fun (row : P.row) ->
      let label = row.P.r_candidate.P.c_label
      and ds = row.P.r_candidate.P.c_ds in
      match row.P.r_outcome with
      | Ok (r : Uas_hw.Estimate.report) ->
        incr rank;
        let speedup, ratio =
          match plan.P.p_baseline with
          | Some base -> (P.speedup ~base r, P.ratio ~base r)
          | None -> (1.0, 1.0)
        in
        { Trajectory.pr_rank = !rank;
          pr_label = label;
          pr_ds = ds;
          pr_ii = r.Uas_hw.Estimate.r_ii;
          pr_area = r.Uas_hw.Estimate.r_area_rows;
          pr_cycles = r.Uas_hw.Estimate.r_total_cycles;
          pr_speedup = speedup;
          pr_ratio = ratio;
          pr_skipped = None }
      | Error d ->
        { Trajectory.pr_rank = 0;
          pr_label = label;
          pr_ds = ds;
          pr_ii = 0;
          pr_area = 0;
          pr_cycles = 0;
          pr_speedup = 0.0;
          pr_ratio = 0.0;
          pr_skipped = Some (Uas_pass.Diag.to_string d) })
    plan.P.p_rows

let plan_target () =
  header "Transform plans: rewrite sequences ending in squash, ranked by \
          the cost model";
  List.iter
    (fun (b : S.Registry.benchmark) ->
      let probe =
        if !validate then Some b.S.Registry.b_workload else None
      in
      let plan =
        P.plan ?jobs:!jobs ?validate:probe ~exact:!exact
          ?timeout_s:!task_timeout ?retries:!retries b.S.Registry.b_program
          ~outer_index:b.S.Registry.b_outer_index
          ~inner_index:b.S.Registry.b_inner_index
          ~benchmark:b.S.Registry.b_name
      in
      Fmt.pr "%a@." P.pp plan;
      List.iter
        (fun (row : P.row) ->
          List.iter
            (fun d ->
              incident ~site:"plan"
                ~cell:(plan.P.p_benchmark ^ "/" ^ row.P.r_candidate.P.c_label)
                ~message:(Uas_pass.Diag.to_string d))
            row.P.r_incidents)
        plan.P.p_rows;
      match !trajectory with
      | Some t ->
        Trajectory.add_plan t ~benchmark:plan.P.p_benchmark
          ~objective:(P.objective_name plan.P.p_objective)
          (plan_rows_for_trajectory plan)
      | None -> ())
    (* the extras ride along here (the 3-deep wavelet nest and its
       flatten-enabled candidates), but stay out of the Table 6.2
       reproduction targets above *)
    (S.Registry.all () @ S.Registry.extras ())

(* --- Bechamel microbenchmarks of the passes --- *)

let micro () =
  header "Microbenchmarks: wall-clock time of the compiler passes";
  (* NB: [open Bechamel] would shadow the [S] alias with Bechamel.S *)
  let module Sj = Uas_bench_suite.Skipjack in
  let open Bechamel in
  let p = Sj.skipjack_mem ~m:16 in
  let nest = Uas_analysis.Loop_nest.find_by_outer_index p "i" in
  let tests =
    [ Test.make ~name:"squash(2) skipjack"
        (Staged.stage (fun () -> ignore (Uas_transform.Squash.apply p nest ~ds:2)));
      Test.make ~name:"squash(8) skipjack"
        (Staged.stage (fun () -> ignore (Uas_transform.Squash.apply p nest ~ds:8)));
      Test.make ~name:"jam(2) skipjack"
        (Staged.stage (fun () ->
             ignore (Uas_transform.Unroll_and_jam.apply p nest ~ds:2)));
      Test.make ~name:"jam(8) skipjack"
        (Staged.stage (fun () ->
             ignore (Uas_transform.Unroll_and_jam.apply p nest ~ds:8)));
      Test.make ~name:"estimate skipjack kernel"
        (Staged.stage (fun () -> ignore (Uas_hw.Estimate.kernel p ~index:"j")));
      Test.make ~name:"dfg build skipjack body"
        (Staged.stage (fun () ->
             ignore
               (Uas_dfg.Build.build ~inner_index:"j"
                  nest.Uas_analysis.Loop_nest.inner_body)));
      Test.make ~name:"legality check (ds=8)"
        (Staged.stage (fun () -> ignore (Uas_analysis.Legality.check nest ~ds:8)));
      (* the two interpreter tiers head to head, on an integer kernel
         (Skipjack) and a float one (IIR); the ref/fast ns-per-run pairs
         land in the --json trajectory as the recorded speedup *)
      (let w =
         Sj.workload_mem ~key:(Sj.random_key ~seed:1)
           (Sj.random_words ~seed:2 64)
       in
       Test.make ~name:"interp-ref skipjack (16 blocks)"
         (Staged.stage (fun () -> ignore (Interp.run p w))));
      (let w =
         Sj.workload_mem ~key:(Sj.random_key ~seed:1)
           (Sj.random_words ~seed:2 64)
       in
       let compiled = Fast_interp.compile p in
       Test.make ~name:"interp-fast skipjack (16 blocks)"
         (Staged.stage (fun () -> ignore (Fast_interp.run compiled w))));
      (let w =
         Sj.workload_mem ~key:(Sj.random_key ~seed:1)
           (Sj.random_words ~seed:2 64)
       in
       (* prepared outside the staged closure: the timed row measures
          kernel execution, with compile time amortized by the memo and
          the cmxs store.  If the toolchain is missing the native rows
          honestly measure the fast tier they degrade to. *)
       match Native_interp.prepare p with
       | Ok nc ->
         Test.make ~name:"interp-native skipjack (16 blocks)"
           (Staged.stage (fun () -> ignore (Native_interp.run nc w)))
       | Error m ->
         Fmt.epr "interp-native skipjack: degraded to fast tier (%s)@." m;
         let compiled = Fast_interp.compile p in
         Test.make ~name:"interp-native skipjack (16 blocks)"
           (Staged.stage (fun () -> ignore (Fast_interp.run compiled w))));
      (let module Iir = Uas_bench_suite.Iir in
       let ip = Iir.iir ~channels:4 in
       let w =
         Iir.workload (Iir.random_signal ~seed:3 (4 * Iir.points_per_channel))
       in
       Test.make ~name:"interp-ref iir (4 channels)"
         (Staged.stage (fun () -> ignore (Interp.run ip w))));
      (let module Iir = Uas_bench_suite.Iir in
       let ip = Iir.iir ~channels:4 in
       let w =
         Iir.workload (Iir.random_signal ~seed:3 (4 * Iir.points_per_channel))
       in
       let compiled = Fast_interp.compile ip in
       Test.make ~name:"interp-fast iir (4 channels)"
         (Staged.stage (fun () -> ignore (Fast_interp.run compiled w))));
      (let module Iir = Uas_bench_suite.Iir in
       let ip = Iir.iir ~channels:4 in
       let w =
         Iir.workload (Iir.random_signal ~seed:3 (4 * Iir.points_per_channel))
       in
       match Native_interp.prepare ip with
       | Ok nc ->
         Test.make ~name:"interp-native iir (4 channels)"
           (Staged.stage (fun () -> ignore (Native_interp.run nc w)))
       | Error m ->
         Fmt.epr "interp-native iir: degraded to fast tier (%s)@." m;
         let compiled = Fast_interp.compile ip in
         Test.make ~name:"interp-native iir (4 channels)"
           (Staged.stage (fun () -> ignore (Fast_interp.run compiled w)))) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          instance raw
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] ->
            Fmt.pr "  %-34s %12.1f ns/run@." name t;
            metric ~name:("micro." ^ name) ~value:t ~unit_label:"ns/run"
          | Some _ | None -> Fmt.pr "  %-34s (no estimate)@." name)
        results)
    tests

let targets =
  [ ("table-1.1", table_1_1);
    ("table-6.1", table_6_1);
    ("table-6.2", table_6_2);
    ("table-6.3", table_6_3);
    ("figure-2", figure_2);
    ("figure-2.4", figure_2_4);
    ("figure-4", figure_4);
    ("figure-6.1", figure_6_1);
    ("figure-6.2", figure_6_2);
    ("figure-6.3", figure_6_3);
    ("figure-6.4", figure_6_4);
    ("combined", combined);
    ("ablation-ports", ablation_ports);
    ("ablation-registers", ablation_registers);
    ("ablation-width", ablation_width);
    ("plan", plan_target);
    ("micro", micro) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* validate the whole command line before running anything: a typo'd
     target used to surface only after the (expensive) targets before
     it had already run *)
  match Uas_core.Cli.parse ~available:(List.map fst targets) args with
  | Error msg ->
    Fmt.epr "%s@." msg;
    exit 1
  | Ok o ->
    if o.Uas_core.Cli.o_version then begin
      Fmt.pr "%s@." Uas_runtime.Build_info.version_string;
      Fmt.pr "%s@." (Uas_runtime.Build_info.jit_version_line ());
      exit 0
    end;
    (* a malformed UAS_JOBS, UAS_FAULT or UAS_INTERP fails up front,
       not as a backtrace out of the first pool dispatch (or a silent
       tier fallback) *)
    (match Uas_runtime.Parallel.default_jobs_result () with
    | Ok _ -> ()
    | Error m ->
      Fmt.epr "%s@." m;
      exit 1);
    (match Uas_runtime.Fault.env_error () with
    | None -> ()
    | Some m ->
      Fmt.epr "%s: %s@." Uas_runtime.Fault.env_var m;
      exit 1);
    (match Fast_interp.env_tier_error () with
    | None -> ()
    | Some m ->
      Fmt.epr "%s@." m;
      exit 1);
    (match o.Uas_core.Cli.o_fault with
    | None -> ()
    | Some plan -> (
      match Uas_runtime.Fault.arm plan with
      | Ok () -> ()
      | Error m ->
        Fmt.epr "--fault: %s@." m;
        exit 1));
    (* the persistent artifact store: --cache DIR, or UAS_CACHE; an
       unopenable directory is a user error, not a degradation *)
    (match
       match o.Uas_core.Cli.o_cache with
       | Some d -> Some d
       | None -> Sys.getenv_opt Uas_runtime.Store.env_var
     with
    | None -> ()
    | Some dir -> (
      match Uas_runtime.Store.open_dir dir with
      | Ok s -> Uas_runtime.Store.install s
      | Error m ->
        Fmt.epr "--cache: %s@." m;
        exit 1));
    if o.Uas_core.Cli.o_cache_verify then Uas_runtime.Store.set_verify true;
    jobs := o.Uas_core.Cli.o_jobs;
    validate := o.Uas_core.Cli.o_validate;
    exact := o.Uas_core.Cli.o_exact;
    task_timeout := o.Uas_core.Cli.o_task_timeout;
    retries := o.Uas_core.Cli.o_retries;
    (match o.Uas_core.Cli.o_interp with
    | Some tier -> Fast_interp.set_default_tier tier
    | None -> ());
    (* --json embeds the span/counter breakdown, so it implies the
       instrumentation --timings turns on *)
    if o.Uas_core.Cli.o_timings || o.Uas_core.Cli.o_json <> None then
      Instrument.set_enabled true;
    let traj =
      Trajectory.make
        ~interp_tier:(Fast_interp.tier_name (Fast_interp.default_tier ()))
        ~jobs:o.Uas_core.Cli.o_jobs ()
    in
    trajectory := Some traj;
    let requested =
      match o.Uas_core.Cli.o_targets with
      | [] -> List.map fst targets
      | names -> names
    in
    List.iter
      (fun name ->
        let (), wall_s = Trajectory.time (List.assoc name targets) in
        Trajectory.add_target traj ~name ~wall_s)
      requested;
    if o.Uas_core.Cli.o_cache_warm then begin
      (* the warm leg: drop the in-process table memo so the second
         pass really goes through the persistent store, and silence
         the trajectory refs so metrics/plans/gaps/incidents are not
         recorded twice — only the "<target> (warm)" wall-clock rows
         land in the document *)
      rows_cache := None;
      trajectory := None;
      List.iter
        (fun name ->
          let (), wall_s = Trajectory.time (List.assoc name targets) in
          Trajectory.add_target traj ~name:(name ^ " (warm)") ~wall_s)
        requested
    end;
    if o.Uas_core.Cli.o_timings then begin
      header "timings";
      Fmt.pr "%a" Instrument.pp_summary ()
    end;
    (match o.Uas_core.Cli.o_json with
    | Some file -> Trajectory.write_file traj file
    | None -> ());
    (* hit rates and latency on stderr, so clean stdout stays
       byte-identical to the committed goldens *)
    match Uas_runtime.Store.installed () with
    | Some s -> Fmt.epr "%a@." Uas_runtime.Store.pp_stats s
    | None -> ()
